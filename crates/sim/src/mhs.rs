//! Behavioral model of the MHS flip-flop (Fig. 4).
//!
//! The MHS flip-flop behaves like a C-element functionally but is
//! electrically robust to small pulses: it does not transmit a pulse shorter
//! than ω, and for pulses of width ≥ ω the output transition is translated
//! forward in time by τ (ω < τ). This module captures exactly that contract
//! as a deterministic state machine; the structural three-stage realization
//! is in [`crate::StructuralMhs`].

/// What the engine must do after feeding an input edge to the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MhsAction {
    /// Nothing to schedule.
    None,
    /// Schedule an output change to `value` at `fire_at`; present `token`
    /// back to [`MhsCell::confirm_fire`] at that time (the cell may have
    /// cancelled the fire in the meantime if the pulse turned out short).
    Schedule {
        /// Absolute firing time in ps.
        fire_at: u64,
        /// The output value to assume.
        value: bool,
        /// Validation token.
        token: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    target: bool,
    rise: u64,
    token: u64,
    committed: bool,
}

/// The behavioral MHS flip-flop.
///
/// Drive it with [`MhsCell::on_inputs`] at every set/reset edge and call
/// [`MhsCell::confirm_fire`] when a scheduled fire time arrives. Pulses
/// shorter than ω never change the output; pulses ≥ ω change it exactly
/// once, τ after the exciting edge.
#[derive(Debug, Clone)]
pub struct MhsCell {
    omega_ps: u64,
    tau_ps: u64,
    out: bool,
    next_token: u64,
    pending: Option<Pending>,
    conflicts: u64,
}

impl MhsCell {
    /// A cell with threshold `omega_ps` and response `tau_ps` (ω < τ).
    ///
    /// # Panics
    ///
    /// Panics if `omega_ps >= tau_ps` (the paper requires ω < τ).
    pub fn new(omega_ps: u64, tau_ps: u64) -> Self {
        assert!(omega_ps < tau_ps, "MHS requires ω < τ");
        MhsCell {
            omega_ps,
            tau_ps,
            out: false,
            next_token: 0,
            pending: None,
            conflicts: 0,
        }
    }

    /// Set the initial output value (Section IV.F initialization).
    pub fn initialize(&mut self, value: bool) {
        self.out = value;
        self.pending = None;
    }

    /// Current output value.
    pub fn output(&self) -> bool {
        self.out
    }

    /// Number of set/reset conflicts observed (both rails high while idle —
    /// never happens inside a correct N-SHOT stage, counted for diagnosis).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Feed the input values after an edge at time `t`.
    pub fn on_inputs(&mut self, t: u64, set: bool, reset: bool) -> MhsAction {
        // Resolve an in-flight pulse first.
        if let Some(p) = &mut self.pending {
            let driving = if p.target { set } else { reset };
            if !driving && !p.committed {
                if t >= p.rise + self.omega_ps {
                    // The pulse lasted ≥ ω before falling: it is accepted.
                    p.committed = true;
                } else {
                    // Runt pulse: absorbed, the scheduled fire goes stale.
                    self.pending = None;
                }
            }
            // While a pulse is pending, further edges cannot start a second
            // excitation of the same polarity; opposite-polarity excitation
            // before the fire would be a protocol violation upstream.
            if let Some(p) = &self.pending {
                let opposite = if p.target { reset } else { set };
                if opposite {
                    self.conflicts += 1;
                }
                return MhsAction::None;
            }
        }
        // Idle: look for a new excitation.
        match (set, reset) {
            (true, true) => {
                self.conflicts += 1;
                MhsAction::None
            }
            (true, false) if !self.out => self.arm(t, true),
            (false, true) if self.out => self.arm(t, false),
            _ => MhsAction::None,
        }
    }

    fn arm(&mut self, t: u64, target: bool) -> MhsAction {
        let token = self.next_token;
        self.next_token += 1;
        self.pending = Some(Pending {
            target,
            rise: t,
            token,
            committed: false,
        });
        MhsAction::Schedule {
            fire_at: t + self.tau_ps,
            value: target,
            token,
        }
    }

    /// Attempt to commit a scheduled fire. Returns `true` (and flips the
    /// output) when the token is still valid — i.e. the exciting pulse was
    /// not cancelled as a runt.
    pub fn confirm_fire(&mut self, token: u64, _t: u64) -> bool {
        match &self.pending {
            Some(p) if p.token == token => {
                self.out = p.target;
                self.pending = None;
                true
            }
            _ => false,
        }
    }
}

/// Convenience harness for the Fig. 4 experiment: feed a set-pulse train to
/// a fresh cell and report the output transition times.
///
/// `pulses` are `(rise_ps, width_ps)` pairs on the set input (reset held 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PulseResponse {
    /// Times at which the output rose.
    pub output_rises: Vec<u64>,
    /// Pulses absorbed as runts.
    pub absorbed: usize,
}

impl PulseResponse {
    /// Run the experiment.
    ///
    /// # Panics
    ///
    /// Panics if the pulses are not strictly ordered in time.
    pub fn of_pulse_train(omega_ps: u64, tau_ps: u64, pulses: &[(u64, u64)]) -> Self {
        let mut cell = MhsCell::new(omega_ps, tau_ps);
        let mut events: Vec<(u64, bool)> = Vec::new();
        let mut last_end = 0;
        for &(rise, width) in pulses {
            assert!(rise >= last_end, "pulses must be ordered and disjoint");
            events.push((rise, true));
            events.push((rise + width, false));
            last_end = rise + width;
        }
        let mut fires: Vec<(u64, u64)> = Vec::new(); // (fire_at, token)
        let mut rises = Vec::new();
        let mut absorbed = 0;
        let mut scheduled = 0;
        let mut i = 0;
        while i < events.len() || !fires.is_empty() {
            let next_fire = fires.first().copied();
            let next_event = events.get(i).copied();
            let fire_first = match (next_fire, next_event) {
                (Some((ft, _)), Some((et, _))) => ft <= et,
                (Some(_), None) => true,
                _ => false,
            };
            if fire_first {
                let (ft, token) = fires.remove(0);
                if cell.confirm_fire(token, ft) {
                    rises.push(ft);
                }
            } else {
                let (t, v) = next_event.expect("some event remains");
                i += 1;
                match cell.on_inputs(t, v, false) {
                    MhsAction::Schedule { fire_at, token, .. } => {
                        fires.push((fire_at, token));
                        fires.sort_unstable();
                        scheduled += 1;
                    }
                    MhsAction::None => {}
                }
            }
        }
        absorbed += scheduled - rises.len();
        PulseResponse {
            output_rises: rises,
            absorbed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OMEGA: u64 = 300;
    const TAU: u64 = 600;

    #[test]
    fn long_pulse_fires_after_tau() {
        let r = PulseResponse::of_pulse_train(OMEGA, TAU, &[(1_000, 500)]);
        assert_eq!(r.output_rises, vec![1_000 + TAU]);
        assert_eq!(r.absorbed, 0);
    }

    #[test]
    fn runt_pulse_is_absorbed() {
        let r = PulseResponse::of_pulse_train(OMEGA, TAU, &[(1_000, 200)]);
        assert!(r.output_rises.is_empty());
        assert_eq!(r.absorbed, 1);
    }

    #[test]
    fn exactly_omega_fires() {
        let r = PulseResponse::of_pulse_train(OMEGA, TAU, &[(1_000, OMEGA)]);
        assert_eq!(r.output_rises, vec![1_000 + TAU]);
    }

    #[test]
    fn pulse_stream_yields_single_transition() {
        // Property 3: a stream of pulses produces one output transition —
        // the first sufficiently long pulse wins, the rest are ignored
        // because the output is already high.
        let r = PulseResponse::of_pulse_train(
            OMEGA,
            TAU,
            &[(1_000, 100), (1_500, 150), (2_000, 400), (3_000, 500), (4_000, 350)],
        );
        assert_eq!(r.output_rises, vec![2_000 + TAU]);
    }

    #[test]
    fn set_while_high_is_ignored() {
        let mut cell = MhsCell::new(OMEGA, TAU);
        cell.initialize(true);
        assert_eq!(cell.on_inputs(100, true, false), MhsAction::None);
        assert!(cell.output());
    }

    #[test]
    fn reset_fires_symmetrically() {
        let mut cell = MhsCell::new(OMEGA, TAU);
        cell.initialize(true);
        let a = cell.on_inputs(1_000, false, true);
        let MhsAction::Schedule { fire_at, value, token } = a else {
            panic!("reset should arm the cell");
        };
        assert!(!value);
        assert_eq!(fire_at, 1_000 + TAU);
        // Hold reset long enough, then confirm.
        assert!(cell.confirm_fire(token, fire_at));
        assert!(!cell.output());
    }

    #[test]
    fn conflicts_are_counted() {
        let mut cell = MhsCell::new(OMEGA, TAU);
        cell.on_inputs(100, true, true);
        assert_eq!(cell.conflicts(), 1);
    }

    #[test]
    #[should_panic(expected = "ω < τ")]
    fn omega_must_be_less_than_tau() {
        let _ = MhsCell::new(600, 600);
    }

    #[test]
    fn reexcitation_after_cancel_fires_fresh() {
        let mut cell = MhsCell::new(OMEGA, TAU);
        // Runt, cancelled.
        let MhsAction::Schedule { token: t1, .. } = cell.on_inputs(0, true, false) else {
            panic!()
        };
        cell.on_inputs(100, false, false);
        assert!(!cell.confirm_fire(t1, TAU));
        // Long pulse fires.
        let MhsAction::Schedule { token: t2, fire_at, .. } =
            cell.on_inputs(1_000, true, false)
        else {
            panic!()
        };
        cell.on_inputs(1_000 + OMEGA + 50, false, false);
        assert!(cell.confirm_fire(t2, fire_at));
        assert!(cell.output());
    }
}
