//! End-to-end shard-tier tests: in-process backends behind an in-process
//! front, driven over real sockets.
//!
//! The load-bearing assertions: responses proxied through the front are
//! **byte-identical** (deterministic prefix) to direct library execution;
//! killing one backend degrades **only that shard's keys** to 503s naming
//! the shard while every other key keeps its exact bytes; `metrics` merges
//! per-shard series; `shutdown` fans out as a graceful drain.

use nshot_server::client::Client;
use nshot_server::json::Json;
use nshot_server::{
    process_synth, Deadline, Method, OutputFormat, Server, ServerConfig, SynthRequest,
};
use nshot_shard::{HashRing, ShardConfig, ShardFront};

/// The four-state handshake used across the server tests, parameterized so
/// different signal names produce different request keys (and therefore
/// spread across shards).
fn handshake_spec(req_sig: &str, ack_sig: &str) -> String {
    format!(
        ".name hs_{req_sig}_{ack_sig}\n\
         .inputs {req_sig}\n\
         .outputs {ack_sig}\n\
         .initial 00\n\
         00 +{req_sig} 10\n\
         10 +{ack_sig} 11\n\
         11 -{req_sig} 01\n\
         01 -{ack_sig} 00\n"
    )
}

/// A synth request line plus everything needed to check it: the canonical
/// key (for ring placement) and the expected deterministic fields (from
/// direct library execution — no server involved).
struct Case {
    line: String,
    key: String,
    expected_fields: String,
}

fn cases() -> Vec<Case> {
    let names = [
        ("r", "g"),
        ("req", "ack"),
        ("a", "b"),
        ("ri", "ro"),
        ("x", "y"),
        ("p", "q"),
        ("din", "dout"),
        ("go", "done"),
    ];
    names
        .iter()
        .map(|(r, a)| {
            let spec = handshake_spec(r, a);
            // Field values mirror the wire defaults of a bare synth line
            // (notably `share: false`) so `req.cache_key()` is the exact
            // key the front computes from the parsed request.
            let req = SynthRequest {
                spec: spec.clone(),
                method: Method::Nshot,
                minimizer: nshot_core::Minimizer::Heuristic,
                trials: 0,
                format: OutputFormat::Blif,
                share: false,
            };
            let expected_fields =
                process_synth(&req, &Deadline::unlimited()).deterministic_fields();
            let escaped = spec.replace('\n', "\\n");
            Case {
                line: format!(
                    "{{\"op\":\"synth\",\"spec\":\"{escaped}\",\"format\":\"blif\"}}"
                ),
                key: req.cache_key(),
                expected_fields,
            }
        })
        .collect()
}

/// The deterministic slice of a raw response line (between the `id` echo
/// and the send-time stamps) — the same extraction the loopback tests use.
fn deterministic_part(raw: &str) -> &str {
    let start = raw.find(",\"code\":").expect("code field");
    let end = raw.rfind(",\"cached\":").expect("cached field");
    &raw[start + 1..end]
}

fn backend() -> Server {
    Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind backend")
}

#[test]
fn front_proxies_byte_identically_and_degrades_only_the_dead_shard() {
    let backend0 = backend();
    let backend1 = backend();
    let front = ShardFront::bind(ShardConfig {
        backends: vec![backend0.local_addr(), backend1.local_addr()],
        ..ShardConfig::default()
    })
    .expect("bind front");

    let cases = cases();
    let ring = HashRing::new(2, 0);
    // The case set must actually exercise both shards for the kill test
    // to mean anything.
    let shard_of = |c: &Case| ring.shard_for(&c.key).expect("routed");
    assert!(cases.iter().any(|c| shard_of(c) == 0), "no shard-0 keys");
    assert!(cases.iter().any(|c| shard_of(c) == 1), "no shard-1 keys");

    let mut client = Client::connect(front.local_addr()).expect("connect front");
    for case in &cases {
        let raw = client.roundtrip(&case.line).expect("roundtrip");
        assert_eq!(
            deterministic_part(&raw),
            case.expected_fields,
            "proxied response differs from direct synthesis for key {}",
            case.key
        );
    }

    // Kill shard 0's backend (graceful, but from the front's point of
    // view it is simply gone).
    backend0.shutdown();
    backend0.wait();

    for case in &cases {
        let raw = client.roundtrip(&case.line).expect("roundtrip");
        if shard_of(case) == 0 {
            let json = nshot_server::json::parse(&raw).expect("parse 503");
            assert_eq!(
                json.get("code").and_then(Json::as_u64),
                Some(503),
                "dead shard's key must degrade: {raw}"
            );
            assert_eq!(
                json.get("shard").and_then(Json::as_u64),
                Some(0),
                "degradation must name the shard: {raw}"
            );
        } else {
            // The surviving shard is untouched: still byte-identical.
            assert_eq!(
                deterministic_part(&raw),
                case.expected_fields,
                "surviving shard's response changed after the kill"
            );
        }
    }

    // The merged exposition reflects the outage and still carries both
    // shards' labelled series.
    let metrics = front.metrics_text();
    assert!(
        metrics.contains("nshot_shard_backend_up{shard=\"0\"} 0"),
        "shard 0 must be marked down:\n{metrics}"
    );
    assert!(
        metrics.contains("nshot_shard_backend_up{shard=\"1\"} 1"),
        "shard 1 must be marked up:\n{metrics}"
    );
    assert!(
        metrics.contains("nshot_requests_total{shard=\"1\"}"),
        "backend series must be merged under the shard label:\n{metrics}"
    );

    front.stop();
    front.wait();
    backend1.shutdown();
    backend1.wait();
}

#[test]
fn all_four_format_combinations_serve_identical_deterministic_fields() {
    // Client framing × backend framing: json×json (the verbatim relay),
    // json×binary, binary×json, binary×binary. Every combination must
    // produce the same deterministic fields as direct library execution —
    // the translation layers are pure re-encodings.
    let cases = cases();
    for backend_binary in [false, true] {
        let backend0 = backend();
        let backend1 = backend();
        let front = ShardFront::bind(ShardConfig {
            backends: vec![backend0.local_addr(), backend1.local_addr()],
            backend_binary,
            ..ShardConfig::default()
        })
        .expect("bind front");

        let mut json_client = Client::connect(front.local_addr()).expect("connect");
        let mut bin_client = Client::connect(front.local_addr()).expect("connect");
        bin_client.upgrade_binary().expect("front accepts binary clients");

        for case in &cases {
            let raw = json_client.roundtrip(&case.line).expect("json roundtrip");
            assert_eq!(
                deterministic_part(&raw),
                case.expected_fields,
                "json client × backend_binary={backend_binary} diverged for {}",
                case.key
            );

            let env = nshot_server::protocol::parse_request(&case.line).expect("parse");
            let obj = bin_client.roundtrip_binary(&env).expect("binary roundtrip");
            // Rendering the assembled object reproduces the NDJSON line
            // shape, so the same extraction applies.
            let rendered = obj.to_string();
            assert_eq!(
                deterministic_part(&rendered),
                case.expected_fields,
                "binary client × backend_binary={backend_binary} diverged for {}",
                case.key
            );
        }

        front.stop();
        front.wait();
        backend0.shutdown();
        backend0.wait();
        backend1.shutdown();
        backend1.wait();
    }
}

#[test]
fn shutdown_fans_out_and_drains_the_backends() {
    let backend0 = backend();
    let backend1 = backend();
    let front = ShardFront::bind(ShardConfig {
        backends: vec![backend0.local_addr(), backend1.local_addr()],
        ..ShardConfig::default()
    })
    .expect("bind front");

    let mut client = Client::connect(front.local_addr()).expect("connect front");
    let json = client
        .roundtrip_json("{\"op\":\"shutdown\"}")
        .expect("shutdown");
    assert_eq!(json.get("code").and_then(Json::as_u64), Some(200));
    assert_eq!(
        json.get("shards_drained").and_then(Json::as_u64),
        Some(2),
        "both backends must acknowledge the drain"
    );

    // The fan-out drained the backends, so their wait() returns promptly;
    // the front stopped itself after replying.
    assert!(backend0.wait().served >= 1);
    assert!(backend1.wait().served >= 1);
    front.wait();
}

#[test]
fn shared_warm_store_hits_on_every_shard() {
    // One writer populates a store directory…
    let dir = std::env::temp_dir().join(format!("nshot-shard-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cases = cases();
    {
        let writer = Server::bind(ServerConfig {
            workers: 1,
            store_dir: Some(dir.clone()),
            store_fsync: nshot_server::FsyncPolicy::Never,
            ..ServerConfig::default()
        })
        .expect("bind writer");
        let mut client = Client::connect(writer.local_addr()).expect("connect");
        for case in &cases {
            let raw = client.roundtrip(&case.line).expect("roundtrip");
            assert!(raw.contains("\"code\":200"), "warm fill failed: {raw}");
        }
        writer.shutdown();
        writer.wait();
    }

    // …and two shared-nothing backends warm from it read-only (this is
    // `--warm-store`): every request through the front is a cache hit on
    // its owning shard, byte-identical to the writer's responses.
    let warm = |_: usize| {
        Server::bind(ServerConfig {
            workers: 1,
            warm_dir: Some(dir.clone()),
            ..ServerConfig::default()
        })
        .expect("bind warm backend")
    };
    let backend0 = warm(0);
    let backend1 = warm(1);
    let front = ShardFront::bind(ShardConfig {
        backends: vec![backend0.local_addr(), backend1.local_addr()],
        ..ShardConfig::default()
    })
    .expect("bind front");

    let mut client = Client::connect(front.local_addr()).expect("connect front");
    for case in &cases {
        let raw = client.roundtrip(&case.line).expect("roundtrip");
        assert_eq!(deterministic_part(&raw), case.expected_fields);
        let json = nshot_server::json::parse(&raw).expect("parse");
        assert_eq!(
            json.get("cached").and_then(Json::as_bool),
            Some(true),
            "a warmed shard must answer from cache: {raw}"
        );
    }

    front.stop();
    front.wait();
    backend0.shutdown();
    backend0.wait();
    backend1.shutdown();
    backend1.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
