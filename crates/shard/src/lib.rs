//! `nshot-shard`: a shared-nothing sharded serving tier for the N-SHOT
//! service.
//!
//! One **front** process accepts the existing NDJSON-over-TCP protocol and
//! consistent-hashes each request's canonical key
//! ([`nshot_logic::request_key`] — the same encoding the response cache
//! and the artifact store use) across N backend `nshot-serve` workers.
//! Each backend is shared-nothing: its own espresso memo, its own response
//! cache, its own worker pool — they share only the (read-only) warm-start
//! store directory. Key-affinity routing means a key always lands on the
//! shard whose caches already saw it, so cache hit rates survive scale-out
//! instead of being divided by N.
//!
//! **Why sharding is safe**: responses are deterministic functions of the
//! request (hazard-freedom under the paper's externally-hazard-free
//! discipline makes synthesis reproducible; the service caches only the
//! deterministic response prefix). Any backend, any thread count, any
//! cache state produces byte-identical deterministic fields — so routing
//! is a pure performance decision, never a correctness one, and the shard
//! smoke can assert byte-identity end to end.
//!
//! The front runs on the same runtime layer as the backends
//! ([`nshot_server::runtime`]): one accept-loop/framing implementation in
//! the tree. Proxying is synchronous in the connection thread, bounded by
//! per-backend connection pools ([`BackendPool`]) with a retry-once
//! discipline; a backend that stays unreachable degrades **only its own
//! keys** to 503 responses naming the shard, while every other shard keeps
//! serving byte-identical answers.
//!
//! Control ops:
//!
//! * `ping` — answered locally, byte-identical to a backend's pong;
//! * `stats` — front-local JSON snapshot with a per-shard table;
//! * `metrics` — fans out to every backend and merges the expositions
//!   under a `shard="i"` label after the front's own series;
//! * `shutdown` — fans out as a graceful drain to every backend, then
//!   stops the front itself.

pub mod pool;
pub mod ring;

pub use pool::BackendPool;
pub use ring::{HashRing, DEFAULT_VNODES};

use nshot_obs::{AtomicHistogram, Counter, Gauge, HeartbeatGuard, Progress, Registry};
use nshot_server::json::{self, Json};
use nshot_server::protocol::{self, Envelope, Request, Response};
use nshot_server::runtime::{FrameReply, LineHandler, LineReply, TcpLineServer};
use nshot_server::wirecodec::{self, RequestDecodeError};
use nshot_server::client;
use nshot_wire::tags;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Front configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Bind address for the front (`host:port`; port 0 picks one).
    pub addr: String,
    /// Backend addresses, one per shard; shard id = index in this list.
    pub backends: Vec<SocketAddr>,
    /// Max concurrent proxied requests per backend.
    pub pool_cap: usize,
    /// Per-attempt connect/send/receive timeout toward a backend, in ms
    /// (0 = OS defaults). Keep it above the backends' own request
    /// deadline, or slow-but-alive synthesis gets misread as a dead shard.
    pub io_timeout_ms: u64,
    /// Virtual nodes per backend on the hash ring (0 = [`DEFAULT_VNODES`]).
    pub vnodes: usize,
    /// Talk the binary wire format to the backends: every pooled
    /// connection negotiates `format: binary` on dial. Client-facing
    /// framing is independent — the front always accepts both, so the
    /// four client×backend format combinations all serve byte-identical
    /// deterministic fields.
    pub backend_binary: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            pool_cap: 8,
            io_timeout_ms: 60_000,
            vnodes: 0,
            backend_binary: false,
        }
    }
}

/// Per-shard metric series, labelled `shard="i"` in the front's registry.
struct ShardSeries {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    up: Arc<Gauge>,
    latency: Arc<AtomicHistogram>,
}

/// The front's mutable state: ring, pools, metrics. This is the
/// [`LineHandler`] the runtime drives.
struct FrontShared {
    started: Instant,
    ring: HashRing,
    pools: Vec<BackendPool>,
    registry: Registry,
    requests: Arc<Counter>,
    degraded: Arc<Counter>,
    shards: Vec<ShardSeries>,
    progress: Progress,
    hb_requests: Arc<Gauge>,
    hb_degraded: Arc<Gauge>,
}

impl FrontShared {
    fn new(config: &ShardConfig) -> FrontShared {
        let registry = Registry::new();
        let requests = registry.counter("nshot_shard_front_requests_total");
        let degraded = registry.counter("nshot_shard_degraded_total");
        let io_timeout = (config.io_timeout_ms > 0)
            .then(|| Duration::from_millis(config.io_timeout_ms));
        let mut pools = Vec::with_capacity(config.backends.len());
        let mut shards = Vec::with_capacity(config.backends.len());
        for (i, &addr) in config.backends.iter().enumerate() {
            pools.push(BackendPool::new(
                addr,
                config.pool_cap,
                io_timeout,
                config.backend_binary,
            ));
            shards.push(ShardSeries {
                requests: registry
                    .counter(&format!("nshot_shard_requests_total{{shard=\"{i}\"}}")),
                errors: registry
                    .counter(&format!("nshot_shard_errors_total{{shard=\"{i}\"}}")),
                up: registry.gauge(&format!("nshot_shard_backend_up{{shard=\"{i}\"}}")),
                latency: registry.histogram(&format!(
                    "nshot_shard_request_duration_us{{shard=\"{i}\"}}"
                )),
            });
        }
        let progress = Progress::new("shard-front");
        let hb_requests = progress.field("requests");
        let hb_degraded = progress.field("degraded");
        FrontShared {
            started: Instant::now(),
            ring: HashRing::new(config.backends.len(), config.vnodes),
            pools,
            registry,
            requests,
            degraded,
            shards,
            progress,
            hb_requests,
            hb_degraded,
        }
    }

    /// Forward one request to the shard owning `key`, in whichever
    /// framing the pool toward that backend speaks. `raw` is the client's
    /// original NDJSON line when there is one — relayed verbatim to a
    /// JSON backend (the cheapest path, and trivially byte-identical);
    /// without it (binary client) the line is re-rendered canonically
    /// from the validated envelope, which is safe because responses are
    /// functions of the validated request.
    ///
    /// # Errors
    ///
    /// The locally built 503 degradation response naming the shard.
    fn forward(
        &self,
        key: &str,
        env: &Envelope,
        raw: Option<&str>,
        trace_id: u64,
        t0: Instant,
    ) -> Result<Proxied, Response> {
        let shard = self
            .ring
            .shard_for(key)
            .expect("bind() rejects empty topologies") as usize;
        let series = &self.shards[shard];
        series.requests.inc();
        let result = if self.pools[shard].is_binary() {
            self.pools[shard].roundtrip_env(env).map(Proxied::Obj)
        } else {
            let rendered;
            let line = match raw {
                Some(line) => line,
                None => {
                    rendered = protocol::render_request(env);
                    &rendered
                }
            };
            self.pools[shard].roundtrip(line).map(Proxied::Line)
        };
        match result {
            Ok(proxied) => {
                series.up.set(1);
                series.latency.record(t0.elapsed().as_micros() as u64);
                Ok(proxied)
            }
            Err(e) => {
                series.errors.inc();
                series.up.set(0);
                self.degraded.inc();
                // Idle sockets into a dead backend are worthless; recovery
                // should start from fresh dials.
                self.pools[shard].clear_idle();
                let addr = self.pools[shard].addr();
                nshot_obs::event("shard_backend_down", || {
                    format!("shard={shard} addr={addr} trace={trace_id} err={e}")
                });
                series.latency.record(t0.elapsed().as_micros() as u64);
                let mut r =
                    Response::rejected(503, format!("shard {shard} backend unavailable"), None);
                r.body.push(("shard".into(), Json::Num(shard as f64)));
                Err(r)
            }
        }
    }

    /// Proxy for an NDJSON client: one response line, whatever framing
    /// the backend spoke. A JSON backend's line is relayed verbatim; a
    /// binary backend's frame stream is re-rendered — both rendering
    /// paths share the `Json` writer, so the deterministic prefix stays
    /// byte-identical to a direct call.
    fn proxy_line(&self, key: &str, env: &Envelope, raw: &str, trace_id: u64, t0: Instant) -> String {
        match self.forward(key, env, Some(raw), trace_id, t0) {
            Ok(Proxied::Line(line)) => line,
            Ok(Proxied::Obj(obj)) => obj.to_string(),
            Err(r) => render_local(&env.id, &r, trace_id, t0),
        }
    }

    /// Proxy for a binary-framed client: the response frame stream. A
    /// binary backend's stream is re-encoded (deterministically — equal
    /// values give equal bytes); a JSON backend's line is parsed and
    /// framed. A backend answer the front cannot re-frame is degraded to
    /// a local 500 naming the relay, never a closed connection.
    fn proxy_frames(&self, key: &str, env: &Envelope, trace_id: u64, t0: Instant) -> Vec<Vec<u8>> {
        let framed = match self.forward(key, env, None, trace_id, t0) {
            Ok(Proxied::Obj(obj)) => {
                wirecodec::encode_response_obj(&obj).map_err(|e| e.to_string())
            }
            Ok(Proxied::Line(line)) => json::parse(&line)
                .map_err(|e| format!("bad backend response json: {e}"))
                .and_then(|obj| {
                    wirecodec::encode_response_obj(&obj).map_err(|e| e.to_string())
                }),
            Err(r) => return local_frames(&env.id, &r, trace_id, t0),
        };
        framed.unwrap_or_else(|msg| {
            let r = Response::error(500, format!("shard relay: {msg}"));
            local_frames(&env.id, &r, trace_id, t0)
        })
    }

    /// The merged Prometheus exposition: the front's own series first,
    /// then every reachable backend's exposition with `shard="i"` injected
    /// into each sample line. Backend `# TYPE` headers are dropped in the
    /// merge (the series are self-describing by suffix; re-deduplicating
    /// headers across shards is not worth the bookkeeping).
    fn metrics_text(&self) -> String {
        let mut text = self.registry.render_prometheus();
        for (i, pool) in self.pools.iter().enumerate() {
            match client::request(pool.addr(), "{\"op\":\"metrics\"}") {
                Ok(json) => {
                    self.shards[i].up.set(1);
                    if let Some(expo) = json.get("exposition").and_then(Json::as_str) {
                        text.push_str(&relabel_exposition(expo, i));
                    }
                }
                Err(e) => {
                    self.shards[i].up.set(0);
                    let addr = pool.addr();
                    nshot_obs::event("shard_backend_down", || {
                        format!("shard={i} addr={addr} err=metrics {e}")
                    });
                }
            }
        }
        text
    }

    /// Front-local stats: totals plus a per-shard table.
    fn stats_response(&self) -> Response {
        let num = |n: u64| Json::Num(n as f64);
        let shards: Vec<Json> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let lat = s.latency.snapshot();
                Json::Obj(vec![
                    ("shard".into(), num(i as u64)),
                    ("addr".into(), Json::Str(self.pools[i].addr().to_string())),
                    ("requests".into(), num(s.requests.get())),
                    ("errors".into(), num(s.errors.get())),
                    ("up".into(), Json::Bool(s.up.get() == 1)),
                    ("p50_us".into(), num(lat.p50_us())),
                    ("p99_us".into(), num(lat.p99_us())),
                ])
            })
            .collect();
        Response::ok(vec![
            (
                "uptime_ms".into(),
                num(self.started.elapsed().as_millis() as u64),
            ),
            ("requests".into(), num(self.requests.get())),
            ("degraded".into(), num(self.degraded.get())),
            ("shards".into(), Json::Arr(shards)),
        ])
    }

    /// Fan the graceful drain out to every backend; each `shutdown`
    /// roundtrip returns only after that backend has drained its queue.
    /// Unreachable backends (already dead) do not block the drain.
    fn shutdown_backends(&self) -> usize {
        let mut drained = 0;
        for (i, pool) in self.pools.iter().enumerate() {
            match client::request(pool.addr(), "{\"op\":\"shutdown\"}") {
                Ok(_) => drained += 1,
                Err(e) => {
                    let addr = pool.addr();
                    nshot_obs::event("shard_backend_down", || {
                        format!("shard={i} addr={addr} err=shutdown {e}")
                    });
                }
            }
        }
        drained
    }
}

/// A backend's answer, in whichever framing the pool toward it spoke.
enum Proxied {
    /// One NDJSON response line, relayed verbatim from a JSON backend.
    Line(String),
    /// The assembled response object from a binary backend's frame stream.
    Obj(Json),
}

/// Render a front-local response line (503 degradation, control ops) with
/// the same envelope shape the backends use.
fn render_local(id: &Json, r: &Response, trace_id: u64, t0: Instant) -> String {
    protocol::render_response(
        id,
        &r.deterministic_fields(),
        false,
        t0.elapsed().as_micros() as u64,
        trace_id,
        "",
    )
}

/// Encode a front-local response (503 degradation, control ops) as the
/// frame stream a binary-framed client expects.
fn local_frames(id: &Json, r: &Response, trace_id: u64, t0: Instant) -> Vec<Vec<u8>> {
    wirecodec::encode_response_frames(
        id,
        r.code,
        r.status,
        &r.body,
        false,
        t0.elapsed().as_micros() as u64,
        trace_id,
        "",
    )
}

/// Inject `shard="i"` as the first label of every sample line of a
/// Prometheus exposition; comment lines (`# TYPE …`) are dropped.
fn relabel_exposition(exposition: &str, shard: usize) -> String {
    let mut out = String::with_capacity(exposition.len() + 64);
    for line in exposition.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once('{') {
            Some((name, rest)) => {
                out.push_str(name);
                out.push_str(&format!("{{shard=\"{shard}\","));
                out.push_str(rest);
            }
            None => match line.split_once(' ') {
                Some((name, value)) => {
                    out.push_str(&format!("{name}{{shard=\"{shard}\"}} {value}"));
                }
                None => out.push_str(line),
            },
        }
        out.push('\n');
    }
    out
}

impl LineHandler for FrontShared {
    fn handle_line(&self, raw: Vec<u8>) -> LineReply {
        let t0 = Instant::now();
        let trace_id = nshot_obs::next_trace_id();
        self.requests.inc();
        self.hb_requests.set(self.requests.get());
        self.hb_degraded.set(self.degraded.get());
        self.progress.beat();

        let text = match String::from_utf8(raw) {
            Ok(text) => text,
            Err(_) => {
                let r = Response::error(400, "request is not valid utf-8");
                return LineReply::reply(render_local(&Json::Null, &r, trace_id, t0));
            }
        };
        let line = text.trim_end_matches('\r');
        match protocol::parse_request(line) {
            // A malformed request never reaches a backend; the local 400
            // carries the same deterministic fields a backend would emit.
            Err((id, message)) => {
                let r = Response::error(400, message);
                LineReply::reply(render_local(&id, &r, trace_id, t0))
            }
            Ok(Envelope { id, request }) => match request {
                Request::Ping => {
                    let r = Response::ok(vec![("pong".into(), Json::Bool(true))]);
                    LineReply::reply(render_local(&id, &r, trace_id, t0))
                }
                Request::Stats => {
                    LineReply::reply(render_local(&id, &self.stats_response(), trace_id, t0))
                }
                Request::Metrics => {
                    let r = Response::ok(vec![(
                        "exposition".into(),
                        Json::Str(self.metrics_text()),
                    )]);
                    LineReply::reply(render_local(&id, &r, trace_id, t0))
                }
                // The front negotiates its *client-facing* framing exactly
                // like a backend would, independent of the backend pools'
                // format — the ack mirrors the server's field shape.
                Request::Hello { binary } => {
                    let r = Response::ok(vec![
                        (
                            "format".into(),
                            Json::Str(if binary { "binary" } else { "json" }.into()),
                        ),
                        (
                            "wire_version".into(),
                            Json::Num(f64::from(nshot_wire::WIRE_VERSION)),
                        ),
                    ]);
                    LineReply {
                        line: render_local(&id, &r, trace_id, t0),
                        shutdown: false,
                        upgrade: binary,
                    }
                }
                Request::Shutdown => {
                    let drained = self.shutdown_backends();
                    let r = Response::ok(vec![
                        ("shutdown".into(), Json::Bool(true)),
                        ("drained".into(), Json::Bool(true)),
                        ("shards_drained".into(), Json::Num(drained as f64)),
                        (
                            "served".into(),
                            Json::Num(self.requests.get() as f64),
                        ),
                    ]);
                    LineReply::last_reply(render_local(&id, &r, trace_id, t0))
                }
                Request::Synth(s) => {
                    let key = s.cache_key();
                    let env = Envelope {
                        id,
                        request: Request::Synth(s),
                    };
                    LineReply::reply(self.proxy_line(&key, &env, line, trace_id, t0))
                }
                Request::Verify(v) => {
                    let key = v.cache_key();
                    let env = Envelope {
                        id,
                        request: Request::Verify(v),
                    };
                    LineReply::reply(self.proxy_line(&key, &env, line, trace_id, t0))
                }
            },
        }
    }

    fn handle_frame(&self, frame: nshot_wire::Frame) -> Option<FrameReply> {
        let t0 = Instant::now();
        let trace_id = nshot_obs::next_trace_id();
        self.requests.inc();
        self.hb_requests.set(self.requests.get());
        self.hb_degraded.set(self.degraded.get());
        self.progress.beat();

        let reply = |frames: Vec<Vec<u8>>| {
            Some(FrameReply {
                frames,
                shutdown: false,
            })
        };
        if frame.tag != tags::REQUEST {
            let r = Response::error(
                400,
                format!("expected a request frame, got tag {}", frame.tag),
            );
            return reply(local_frames(&Json::Null, &r, trace_id, t0));
        }
        let env = match wirecodec::decode_request(&frame.payload) {
            // Structural damage: the framing can no longer be trusted.
            Err(RequestDecodeError::Frame(_)) => return None,
            Err(RequestDecodeError::Invalid { id, message }) => {
                let r = Response::error(400, message);
                return reply(local_frames(&id, &r, trace_id, t0));
            }
            Ok(env) => env,
        };
        match &env.request {
            Request::Ping => {
                let r = Response::ok(vec![("pong".into(), Json::Bool(true))]);
                reply(local_frames(&env.id, &r, trace_id, t0))
            }
            Request::Stats => reply(local_frames(&env.id, &self.stats_response(), trace_id, t0)),
            Request::Metrics => {
                let r = Response::ok(vec![(
                    "exposition".into(),
                    Json::Str(self.metrics_text()),
                )]);
                reply(local_frames(&env.id, &r, trace_id, t0))
            }
            // Unreachable — `decode_request` has no hello op byte — but
            // answered like any other invalid binary request.
            Request::Hello { .. } => {
                let r = Response::error(400, "hello is json-only");
                reply(local_frames(&env.id, &r, trace_id, t0))
            }
            Request::Shutdown => {
                let drained = self.shutdown_backends();
                let r = Response::ok(vec![
                    ("shutdown".into(), Json::Bool(true)),
                    ("drained".into(), Json::Bool(true)),
                    ("shards_drained".into(), Json::Num(drained as f64)),
                    ("served".into(), Json::Num(self.requests.get() as f64)),
                ]);
                Some(FrameReply {
                    frames: local_frames(&env.id, &r, trace_id, t0),
                    shutdown: true,
                })
            }
            Request::Synth(s) => {
                let key = s.cache_key();
                reply(self.proxy_frames(&key, &env, trace_id, t0))
            }
            Request::Verify(v) => {
                let key = v.cache_key();
                reply(self.proxy_frames(&key, &env, trace_id, t0))
            }
        }
    }
}

/// A running shard front.
pub struct ShardFront {
    shared: Arc<FrontShared>,
    line_server: TcpLineServer,
    _heartbeat: HeartbeatGuard,
}

impl ShardFront {
    /// Bind the front and start proxying. Backends are probed with one
    /// `ping` each to seed the `nshot_shard_backend_up` gauges — a probe
    /// failure is recorded, not fatal (the shard degrades per request).
    ///
    /// # Errors
    ///
    /// An empty backend list ([`std::io::ErrorKind::InvalidInput`]) or a
    /// bind failure.
    pub fn bind(config: ShardConfig) -> std::io::Result<ShardFront> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "shard front needs at least one backend",
            ));
        }
        let shared = Arc::new(FrontShared::new(&config));
        for (i, pool) in shared.pools.iter().enumerate() {
            let up = client::request(pool.addr(), "{\"op\":\"ping\"}").is_ok();
            shared.shards[i].up.set(u64::from(up));
        }
        let heartbeat = shared.progress.start_reporter();
        let line_server = TcpLineServer::bind(&config.addr, Arc::clone(&shared))?;
        Ok(ShardFront {
            shared,
            line_server,
            _heartbeat: heartbeat,
        })
    }

    /// The front's bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.line_server.local_addr()
    }

    /// The merged metrics exposition (what the `metrics` op returns).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Stop the front's accept loop. Does **not** touch the backends —
    /// the protocol `shutdown` op is the fan-out drain; this is the local
    /// half (used by tests and embedders that own their backends).
    pub fn stop(&self) {
        self.line_server.stop();
    }

    /// Block until the front has stopped (via [`stop`](Self::stop) or a
    /// protocol `shutdown`). Returns total request lines served.
    pub fn wait(self) -> u64 {
        self.line_server.join();
        self.shared.requests.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_injects_shard_into_both_shapes() {
        let merged = relabel_exposition(
            "# TYPE nshot_requests_total counter\n\
             nshot_requests_total 7\n\
             nshot_responses_total{outcome=\"ok\"} 5\n",
            2,
        );
        assert_eq!(
            merged,
            "nshot_requests_total{shard=\"2\"} 7\n\
             nshot_responses_total{shard=\"2\",outcome=\"ok\"} 5\n"
        );
    }

    #[test]
    fn empty_topology_is_rejected() {
        let err = match ShardFront::bind(ShardConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("empty topology must be rejected"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
