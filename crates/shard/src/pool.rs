//! Per-backend bounded connection pool.
//!
//! Each backend gets its own pool: at most `cap` concurrent proxied
//! requests (a permit counter, waited on with a condvar — the front's
//! connection threads block here instead of piling unbounded connections
//! onto a backend), with idle connections kept for reuse.
//!
//! A pool speaks one framing toward its backend, fixed at construction:
//! NDJSON lines, or — with `binary` — `nshot-wire` frames, negotiated
//! once per dial ([`Client::upgrade_binary`]) so pooled connections are
//! already upgraded when they are reused.
//!
//! Failure handling is **retry-once**: a roundtrip that fails on a pooled
//! connection is retried on a freshly dialed one (the pooled socket may
//! simply have aged out), and a dial that fails is redialed once before
//! the error propagates. Retrying a possibly-executed request is safe
//! because responses are deterministic functions of the request (the
//! determinism argument of DESIGN.md §4j): re-executing produces the same
//! deterministic prefix, at worst as a backend cache hit.

use nshot_server::client::Client;
use nshot_server::json::Json;
use nshot_server::protocol::Envelope;
use std::net::SocketAddr;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A bounded pool of protocol connections to one backend.
pub struct BackendPool {
    addr: SocketAddr,
    cap: usize,
    io_timeout: Option<Duration>,
    binary: bool,
    idle: Mutex<Vec<Client>>,
    permits: Mutex<usize>,
    available: Condvar,
}

impl BackendPool {
    /// A pool of at most `cap` concurrent requests against `addr`
    /// (`cap = 0` is clamped to 1). `io_timeout` bounds connect, send and
    /// receive per attempt (`None` = OS defaults). With `binary`, every
    /// dial negotiates the binary wire format before the connection
    /// serves requests.
    pub fn new(
        addr: SocketAddr,
        cap: usize,
        io_timeout: Option<Duration>,
        binary: bool,
    ) -> BackendPool {
        BackendPool {
            addr,
            cap: cap.max(1),
            io_timeout,
            binary,
            idle: Mutex::new(Vec::new()),
            permits: Mutex::new(cap.max(1)),
            available: Condvar::new(),
        }
    }

    /// The backend this pool fronts.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether this pool talks binary frames to its backend.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().expect("permits poisoned");
        while *permits == 0 {
            permits = self
                .available
                .wait(permits)
                .expect("permits poisoned");
        }
        *permits -= 1;
    }

    fn release(&self) {
        let mut permits = self.permits.lock().expect("permits poisoned");
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }

    fn dial(&self) -> std::io::Result<Client> {
        let mut client = match self.io_timeout {
            Some(t) => Client::connect_timeout(self.addr, t)?,
            None => Client::connect(self.addr)?,
        };
        client.set_io_timeout(self.io_timeout)?;
        if self.binary {
            client.upgrade_binary()?;
        }
        Ok(client)
    }

    /// Send one request line to the backend and return its response line.
    /// Only valid on a JSON pool.
    ///
    /// Blocks while the pool is at capacity (backpressure toward the
    /// front's clients), reuses an idle connection when one exists, and
    /// applies the retry-once discipline described in the module docs.
    ///
    /// # Errors
    ///
    /// A human-readable description of the final failed attempt; the
    /// caller (the front) degrades it to a 503 naming the shard.
    pub fn roundtrip(&self, line: &str) -> Result<String, String> {
        debug_assert!(!self.binary, "line roundtrip on a binary pool");
        self.with_client(|c| c.roundtrip(line))
    }

    /// Send one request envelope over binary framing and return the
    /// assembled response object. Only valid on a binary pool.
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Self::roundtrip).
    pub fn roundtrip_env(&self, env: &Envelope) -> Result<Json, String> {
        debug_assert!(self.binary, "binary roundtrip on a line pool");
        self.with_client(|c| c.roundtrip_binary(env))
    }

    fn with_client<T>(
        &self,
        mut exchange: impl FnMut(&mut Client) -> std::io::Result<T>,
    ) -> Result<T, String> {
        self.acquire();
        let result = self.with_client_inner(&mut exchange);
        self.release();
        result
    }

    fn with_client_inner<T>(
        &self,
        exchange: &mut dyn FnMut(&mut Client) -> std::io::Result<T>,
    ) -> Result<T, String> {
        // A pooled connection may be stale (backend restarted, idle socket
        // reaped); its failure is not the backend's answer, so fall through
        // to a fresh dial.
        let pooled = self.idle.lock().expect("idle poisoned").pop();
        if let Some(mut client) = pooled {
            if let Ok(response) = exchange(&mut client) {
                self.park(client);
                return Ok(response);
            }
        }
        let mut client = match self.dial() {
            Ok(c) => c,
            // Retry-once on connect failure: a backend mid-restart (or a
            // listen queue burp) gets a second chance before we declare it
            // down.
            Err(_) => self
                .dial()
                .map_err(|e| format!("connect {}: {e}", self.addr))?,
        };
        match exchange(&mut client) {
            Ok(response) => {
                self.park(client);
                Ok(response)
            }
            Err(e) => Err(format!("roundtrip {}: {e}", self.addr)),
        }
    }

    /// Return a healthy connection to the idle set (bounded by `cap` —
    /// there can never be more live connections than permits).
    fn park(&self, client: Client) {
        let mut idle = self.idle.lock().expect("idle poisoned");
        if idle.len() < self.cap {
            idle.push(client);
        }
    }

    /// Drop every idle connection (used after a backend is declared down,
    /// so recovery starts from fresh dials).
    pub fn clear_idle(&self) {
        self.idle.lock().expect("idle poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshot_server::protocol::Request;
    use nshot_server::runtime::{FrameReply, LineHandler, LineReply, TcpLineServer};
    use nshot_server::wirecodec;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Echo;
    impl LineHandler for Echo {
        fn handle_line(&self, raw: Vec<u8>) -> LineReply {
            LineReply::reply(format!("echo {}", String::from_utf8_lossy(&raw)))
        }
    }

    #[test]
    fn reuses_connections_and_answers() {
        let server = TcpLineServer::bind("127.0.0.1:0", Arc::new(Echo)).expect("bind");
        let pool = BackendPool::new(server.local_addr(), 2, None, false);
        for i in 0..5 {
            let r = pool.roundtrip(&format!("r{i}")).expect("roundtrip");
            assert_eq!(r, format!("echo r{i}"));
        }
        server.stop();
        server.join();
    }

    #[test]
    fn bounded_concurrency_queues_rather_than_piling_on() {
        struct Slow(AtomicUsize, AtomicUsize);
        impl LineHandler for Slow {
            fn handle_line(&self, _raw: Vec<u8>) -> LineReply {
                let now = self.0.fetch_add(1, Ordering::SeqCst) + 1;
                self.1.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                self.0.fetch_sub(1, Ordering::SeqCst);
                LineReply::reply("ok".into())
            }
        }
        let handler = Arc::new(Slow(AtomicUsize::new(0), AtomicUsize::new(0)));
        let server =
            TcpLineServer::bind("127.0.0.1:0", Arc::clone(&handler)).expect("bind");
        let pool = Arc::new(BackendPool::new(server.local_addr(), 2, None, false));
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.roundtrip("x").expect("roundtrip"))
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().expect("join"), "ok");
        }
        assert!(
            handler.1.load(Ordering::SeqCst) <= 2,
            "pool cap 2 exceeded: peak {}",
            handler.1.load(Ordering::SeqCst)
        );
        server.stop();
        server.join();
    }

    #[test]
    fn dead_backend_reports_connect_error() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let pool = BackendPool::new(addr, 1, Some(Duration::from_millis(200)), false);
        let err = pool.roundtrip("x").expect_err("must fail");
        assert!(err.contains("connect"), "unexpected error: {err}");
    }

    #[test]
    fn stale_pooled_connection_retries_on_a_fresh_dial() {
        let server = TcpLineServer::bind("127.0.0.1:0", Arc::new(Echo)).expect("bind");
        let addr = server.local_addr();
        let pool = BackendPool::new(addr, 1, None, false);
        assert_eq!(pool.roundtrip("a").expect("roundtrip"), "echo a");
        // Kill the backend the pooled connection points at, then bring a
        // new one up on the same address.
        server.stop();
        server.join();
        let server2 = loop {
            // The listener may linger briefly; rebind until it sticks.
            match TcpLineServer::bind(&addr.to_string(), Arc::new(Echo)) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        assert_eq!(pool.roundtrip("b").expect("retried"), "echo b");
        server2.stop();
        server2.join();
    }

    /// A backend speaking just enough of the binary protocol: any hello
    /// line upgrades, any request frame gets a pong carrying how many
    /// frames this connection's handler has served (to prove the upgrade
    /// happened once and the socket is being reused).
    struct BinaryCounting(AtomicUsize);
    impl LineHandler for BinaryCounting {
        fn handle_line(&self, _raw: Vec<u8>) -> LineReply {
            LineReply {
                line: "{\"id\":null,\"code\":200,\"status\":\"ok\"}".into(),
                shutdown: false,
                upgrade: true,
            }
        }

        fn handle_frame(&self, frame: nshot_wire::Frame) -> Option<FrameReply> {
            let env = wirecodec::decode_request(&frame.payload).ok()?;
            let served = self.0.fetch_add(1, Ordering::SeqCst) + 1;
            let frames = wirecodec::encode_response_frames(
                &env.id,
                200,
                "ok",
                &[("served".to_owned(), Json::Num(served as f64))],
                false,
                1,
                2,
                "",
            );
            Some(FrameReply {
                frames,
                shutdown: false,
            })
        }
    }

    #[test]
    fn binary_pool_upgrades_on_dial_and_reuses_the_connection() {
        let server = TcpLineServer::bind(
            "127.0.0.1:0",
            Arc::new(BinaryCounting(AtomicUsize::new(0))),
        )
        .expect("bind");
        let pool = BackendPool::new(server.local_addr(), 2, None, true);
        assert!(pool.is_binary());
        for i in 1..=3u64 {
            let env = Envelope {
                id: Json::Num(i as f64),
                request: Request::Ping,
            };
            let obj = pool.roundtrip_env(&env).expect("binary roundtrip");
            assert_eq!(obj.get("id").unwrap().as_u64(), Some(i));
            assert_eq!(obj.get("served").unwrap().as_u64(), Some(i));
        }
        server.stop();
        server.join();
    }
}
