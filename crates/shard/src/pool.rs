//! Per-backend bounded connection pool.
//!
//! Each backend gets its own pool: at most `cap` concurrent proxied
//! requests (a permit counter, waited on with a condvar — the front's
//! connection threads block here instead of piling unbounded connections
//! onto a backend), with idle connections kept for reuse.
//!
//! Failure handling is **retry-once**: a roundtrip that fails on a pooled
//! connection is retried on a freshly dialed one (the pooled socket may
//! simply have aged out), and a dial that fails is redialed once before
//! the error propagates. Retrying a possibly-executed request is safe
//! because responses are deterministic functions of the request (the
//! determinism argument of DESIGN.md §4j): re-executing produces the same
//! deterministic prefix, at worst as a backend cache hit.

use nshot_server::client::Client;
use std::net::SocketAddr;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A bounded pool of NDJSON connections to one backend.
pub struct BackendPool {
    addr: SocketAddr,
    cap: usize,
    io_timeout: Option<Duration>,
    idle: Mutex<Vec<Client>>,
    permits: Mutex<usize>,
    available: Condvar,
}

impl BackendPool {
    /// A pool of at most `cap` concurrent requests against `addr`
    /// (`cap = 0` is clamped to 1). `io_timeout` bounds connect, send and
    /// receive per attempt (`None` = OS defaults).
    pub fn new(addr: SocketAddr, cap: usize, io_timeout: Option<Duration>) -> BackendPool {
        BackendPool {
            addr,
            cap: cap.max(1),
            io_timeout,
            idle: Mutex::new(Vec::new()),
            permits: Mutex::new(cap.max(1)),
            available: Condvar::new(),
        }
    }

    /// The backend this pool fronts.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().expect("permits poisoned");
        while *permits == 0 {
            permits = self
                .available
                .wait(permits)
                .expect("permits poisoned");
        }
        *permits -= 1;
    }

    fn release(&self) {
        let mut permits = self.permits.lock().expect("permits poisoned");
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }

    fn dial(&self) -> std::io::Result<Client> {
        let client = match self.io_timeout {
            Some(t) => Client::connect_timeout(self.addr, t)?,
            None => Client::connect(self.addr)?,
        };
        client.set_io_timeout(self.io_timeout)?;
        Ok(client)
    }

    /// Send one request line to the backend and return its response line.
    ///
    /// Blocks while the pool is at capacity (backpressure toward the
    /// front's clients), reuses an idle connection when one exists, and
    /// applies the retry-once discipline described in the module docs.
    ///
    /// # Errors
    ///
    /// A human-readable description of the final failed attempt; the
    /// caller (the front) degrades it to a 503 naming the shard.
    pub fn roundtrip(&self, line: &str) -> Result<String, String> {
        self.acquire();
        let result = self.roundtrip_inner(line);
        self.release();
        result
    }

    fn roundtrip_inner(&self, line: &str) -> Result<String, String> {
        // A pooled connection may be stale (backend restarted, idle socket
        // reaped); its failure is not the backend's answer, so fall through
        // to a fresh dial.
        let pooled = self.idle.lock().expect("idle poisoned").pop();
        if let Some(mut client) = pooled {
            if let Ok(response) = client.roundtrip(line) {
                self.park(client);
                return Ok(response);
            }
        }
        let mut client = match self.dial() {
            Ok(c) => c,
            // Retry-once on connect failure: a backend mid-restart (or a
            // listen queue burp) gets a second chance before we declare it
            // down.
            Err(_) => self
                .dial()
                .map_err(|e| format!("connect {}: {e}", self.addr))?,
        };
        match client.roundtrip(line) {
            Ok(response) => {
                self.park(client);
                Ok(response)
            }
            Err(e) => Err(format!("roundtrip {}: {e}", self.addr)),
        }
    }

    /// Return a healthy connection to the idle set (bounded by `cap` —
    /// there can never be more live connections than permits).
    fn park(&self, client: Client) {
        let mut idle = self.idle.lock().expect("idle poisoned");
        if idle.len() < self.cap {
            idle.push(client);
        }
    }

    /// Drop every idle connection (used after a backend is declared down,
    /// so recovery starts from fresh dials).
    pub fn clear_idle(&self) {
        self.idle.lock().expect("idle poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshot_server::runtime::{LineHandler, LineReply, TcpLineServer};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Echo;
    impl LineHandler for Echo {
        fn handle_line(&self, raw: Vec<u8>) -> LineReply {
            LineReply::reply(format!("echo {}", String::from_utf8_lossy(&raw)))
        }
    }

    #[test]
    fn reuses_connections_and_answers() {
        let server = TcpLineServer::bind("127.0.0.1:0", Arc::new(Echo)).expect("bind");
        let pool = BackendPool::new(server.local_addr(), 2, None);
        for i in 0..5 {
            let r = pool.roundtrip(&format!("r{i}")).expect("roundtrip");
            assert_eq!(r, format!("echo r{i}"));
        }
        server.stop();
        server.join();
    }

    #[test]
    fn bounded_concurrency_queues_rather_than_piling_on() {
        struct Slow(AtomicUsize, AtomicUsize);
        impl LineHandler for Slow {
            fn handle_line(&self, _raw: Vec<u8>) -> LineReply {
                let now = self.0.fetch_add(1, Ordering::SeqCst) + 1;
                self.1.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                self.0.fetch_sub(1, Ordering::SeqCst);
                LineReply::reply("ok".into())
            }
        }
        let handler = Arc::new(Slow(AtomicUsize::new(0), AtomicUsize::new(0)));
        let server =
            TcpLineServer::bind("127.0.0.1:0", Arc::clone(&handler)).expect("bind");
        let pool = Arc::new(BackendPool::new(server.local_addr(), 2, None));
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.roundtrip("x").expect("roundtrip"))
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().expect("join"), "ok");
        }
        assert!(
            handler.1.load(Ordering::SeqCst) <= 2,
            "pool cap 2 exceeded: peak {}",
            handler.1.load(Ordering::SeqCst)
        );
        server.stop();
        server.join();
    }

    #[test]
    fn dead_backend_reports_connect_error() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let pool = BackendPool::new(addr, 1, Some(Duration::from_millis(200)));
        let err = pool.roundtrip("x").expect_err("must fail");
        assert!(err.contains("connect"), "unexpected error: {err}");
    }

    #[test]
    fn stale_pooled_connection_retries_on_a_fresh_dial() {
        let server = TcpLineServer::bind("127.0.0.1:0", Arc::new(Echo)).expect("bind");
        let addr = server.local_addr();
        let pool = BackendPool::new(addr, 1, None);
        assert_eq!(pool.roundtrip("a").expect("roundtrip"), "echo a");
        // Kill the backend the pooled connection points at, then bring a
        // new one up on the same address.
        server.stop();
        server.join();
        let server2 = loop {
            // The listener may linger briefly; rebind until it sticks.
            match TcpLineServer::bind(&addr.to_string(), Arc::new(Echo)) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        assert_eq!(pool.roundtrip("b").expect("retried"), "echo b");
        server2.stop();
        server2.join();
    }
}
