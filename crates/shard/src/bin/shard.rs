//! `nshot-shard` — the sharded serving front.
//!
//! ```text
//! nshot-shard --backends HOST:PORT,HOST:PORT,...   # front existing workers
//! nshot-shard --spawn N [--store DIR]              # spawn N local workers
//! ```
//!
//! Flags:
//!
//! * `--addr HOST:PORT` — front bind address (default `127.0.0.1:0`)
//! * `--backends LIST` — comma-separated backend addresses (shard id =
//!   position in the list)
//! * `--spawn N` — instead of `--backends`, spawn `N` local `nshot-serve`
//!   children on ephemeral ports and front them; children are discovered
//!   by their `ready ADDR` stdout line (no port-file polling race)
//! * `--serve-bin PATH` — the `nshot-serve` binary for `--spawn` (default:
//!   sibling of this executable)
//! * `--store DIR` — with `--spawn`, pass the shared warm-start store to
//!   every child as `--warm-store DIR` (read-only scan: any number of
//!   children may warm from one directory)
//! * `--pool-cap N` — max concurrent proxied requests per backend
//!   (default 8)
//! * `--io-timeout-ms MS` — per-attempt backend IO timeout (default
//!   60000; 0 = OS defaults)
//! * `--vnodes N` — virtual nodes per backend on the hash ring (default
//!   64)
//! * `--backend-format json|binary` — the framing the front's pools speak
//!   toward the backends (default `json`); with `binary` every pooled
//!   connection negotiates the `nshot-wire` format on dial. Client-facing
//!   framing is negotiated per connection regardless.
//! * `--port-file PATH` — write the front's bound address for discovery
//!
//! The front prints its own `ready ADDR` line once accepting. A protocol
//! `shutdown` drains every backend (children exit on their own drain) and
//! then the front; the process reaps its children before exiting.

use nshot_shard::{ShardConfig, ShardFront};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

struct Options {
    config: ShardConfig,
    spawn: usize,
    serve_bin: Option<PathBuf>,
    store: Option<PathBuf>,
    port_file: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        config: ShardConfig::default(),
        spawn: 0,
        serve_bin: None,
        store: None,
        port_file: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => opts.config.addr = value("--addr")?,
            "--backends" => {
                for part in value("--backends")?.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let addr: SocketAddr = part
                        .parse()
                        .map_err(|e| format!("--backends '{part}': {e}"))?;
                    opts.config.backends.push(addr);
                }
            }
            "--spawn" => {
                opts.spawn = value("--spawn")?
                    .parse()
                    .map_err(|e| format!("--spawn: {e}"))?;
            }
            "--serve-bin" => opts.serve_bin = Some(PathBuf::from(value("--serve-bin")?)),
            "--store" => opts.store = Some(PathBuf::from(value("--store")?)),
            "--pool-cap" => {
                opts.config.pool_cap = value("--pool-cap")?
                    .parse()
                    .map_err(|e| format!("--pool-cap: {e}"))?;
            }
            "--io-timeout-ms" => {
                opts.config.io_timeout_ms = value("--io-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--io-timeout-ms: {e}"))?;
            }
            "--vnodes" => {
                opts.config.vnodes = value("--vnodes")?
                    .parse()
                    .map_err(|e| format!("--vnodes: {e}"))?;
            }
            "--backend-format" => {
                opts.config.backend_binary = match value("--backend-format")?.as_str() {
                    "binary" => true,
                    "json" => false,
                    other => return Err(format!("unknown backend format '{other}'")),
                };
            }
            "--port-file" => opts.port_file = Some(PathBuf::from(value("--port-file")?)),
            "--help" | "-h" => {
                println!(
                    "usage: nshot-shard (--backends HOST:PORT,... | --spawn N) \
                     [--addr HOST:PORT] [--serve-bin PATH] [--store DIR] \
                     [--pool-cap N] [--io-timeout-ms MS] [--vnodes N] \
                     [--backend-format json|binary] [--port-file PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if (opts.spawn > 0) == !opts.config.backends.is_empty() {
        return Err("exactly one of --backends or --spawn is required".into());
    }
    Ok(opts)
}

/// Spawn one local `nshot-serve` child on an ephemeral port and wait for
/// its `ready ADDR` line. The rest of the child's stdout is forwarded to
/// our stderr by a drain thread (so its shutdown report stays visible and
/// the pipe never fills).
fn spawn_backend(
    serve_bin: &PathBuf,
    store: Option<&PathBuf>,
    shard: usize,
) -> Result<(Child, SocketAddr), String> {
    let mut cmd = Command::new(serve_bin);
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .stdin(Stdio::null());
    if let Some(dir) = store {
        cmd.arg("--warm-store").arg(dir);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", serve_bin.display()))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("shard {shard}: read child stdout: {e}"))?;
        if n == 0 {
            return Err(format!("shard {shard}: child exited before ready"));
        }
        if let Some(rest) = line.trim().strip_prefix("ready ") {
            break rest
                .parse::<SocketAddr>()
                .map_err(|e| format!("shard {shard}: bad ready line '{line}': {e}"))?;
        }
        // Anything before `ready` (warm-start notes, …) passes through.
        eprint!("shard {shard}: {line}");
    };
    let _ = std::thread::Builder::new()
        .name(format!("nshot-child-{shard}"))
        .spawn(move || {
            let mut line = String::new();
            while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                eprint!("shard {shard}: {line}");
                line.clear();
            }
        });
    Ok((child, addr))
}

fn run(args: &[String]) -> Result<(), String> {
    let mut opts = parse_args(args)?;

    let mut children: Vec<Child> = Vec::new();
    if opts.spawn > 0 {
        let serve_bin = match opts.serve_bin.clone() {
            Some(path) => path,
            None => {
                // Default: nshot-serve next to this executable.
                let mut path = std::env::current_exe()
                    .map_err(|e| format!("current_exe: {e}"))?;
                path.set_file_name("nshot-serve");
                path
            }
        };
        for shard in 0..opts.spawn {
            let (child, addr) = spawn_backend(&serve_bin, opts.store.as_ref(), shard)?;
            children.push(child);
            opts.config.backends.push(addr);
            eprintln!("nshot-shard: shard {shard} backend at {addr}");
        }
    }

    let front = ShardFront::bind(opts.config.clone()).map_err(|e| {
        for child in &mut children {
            let _ = child.kill();
        }
        format!("bind {}: {e}", opts.config.addr)
    })?;
    let addr = front.local_addr();
    if let Some(path) = &opts.port_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    eprintln!(
        "nshot-shard: front at {addr}, {} shard(s)",
        opts.config.backends.len()
    );
    // The machine-readable readiness line (same contract as nshot-serve).
    println!("ready {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let served = front.wait();
    for (shard, child) in children.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("nshot-shard: shard {shard} exited {status}"),
            Err(e) => eprintln!("nshot-shard: shard {shard} wait: {e}"),
        }
    }
    eprintln!("nshot-shard: drained after {served} request(s)");
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("nshot-shard: {msg}");
            std::process::ExitCode::FAILURE
        }
    }
}
