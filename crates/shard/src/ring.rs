//! Consistent-hash ring over backend indices.
//!
//! The ring places `vnodes` virtual points per backend on a `u64` circle
//! and routes a request key to the backend owning the first point at or
//! after the key's hash. Both hashes come from the repo's deterministic
//! [`FxHasher`](nshot_par::FxHasher) — no per-process seed — so every
//! front process, thread, and restart computes the *same* placement for
//! the same topology. That determinism is what makes shard-local caches
//! effective: a key always lands on the shard whose espresso memo and
//! response cache already saw it.
//!
//! Virtual nodes bound the disruption of resizing: going from `n` to
//! `n + 1` backends moves only the keys whose ring interval the new
//! backend's points capture — about `K/(n+1)` of `K` keys — and every
//! moved key moves *to* the new backend, never between survivors (see the
//! property tests).

use nshot_par::FxHasher;
use std::hash::Hasher;

/// Virtual points per backend. High enough that per-backend load spreads
/// within a few percent of uniform; low enough that building and searching
/// the ring stays trivial (`n · 64` points, binary search per request).
pub const DEFAULT_VNODES: usize = 64;

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// An immutable consistent-hash ring for `backends` shards.
#[derive(Debug, Clone)]
pub struct HashRing {
    backends: usize,
    /// Sorted `(point, backend)` pairs; ties broken by backend index so
    /// two colliding points still order deterministically.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Build the ring for `backends` shards with `vnodes` points each
    /// (`0` uses [`DEFAULT_VNODES`]). A zero-backend ring is legal and
    /// routes nothing.
    pub fn new(backends: usize, vnodes: usize) -> HashRing {
        let vnodes = if vnodes == 0 { DEFAULT_VNODES } else { vnodes };
        let mut points = Vec::with_capacity(backends * vnodes);
        for b in 0..backends {
            for v in 0..vnodes {
                // The point identity is the textual `backend/vnode` pair —
                // stable under any future change to integer widths.
                let point = hash_bytes(format!("nshot-shard/{b}/{v}").as_bytes());
                points.push((point, b as u32));
            }
        }
        points.sort_unstable();
        HashRing { backends, points }
    }

    /// Number of backends the ring routes across.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backend index owning `key` (the canonical
    /// `nshot_logic::request_key` encoding). `None` only for an empty
    /// ring.
    pub fn shard_for(&self, key: &str) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_bytes(key.as_bytes());
        // First point clockwise from the key's hash, wrapping at the top.
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, backend) = self.points[idx % self.points.len()];
        Some(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("nshot|heuristic|0|blif|true|.inputs r{i}\n"))
            .collect()
    }

    #[test]
    fn placement_is_deterministic_across_threads() {
        let keys = keys(512);
        let baseline: Vec<Option<u32>> = {
            let ring = HashRing::new(4, 0);
            keys.iter().map(|k| ring.shard_for(k)).collect()
        };
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let keys = keys.clone();
                std::thread::spawn(move || {
                    // Each thread builds its own ring — placement must not
                    // depend on which thread (or process) built it.
                    let ring = HashRing::new(4, 0);
                    keys.iter().map(|k| ring.shard_for(k)).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("thread"), baseline);
        }
    }

    #[test]
    fn all_backends_receive_traffic() {
        let ring = HashRing::new(4, 0);
        let mut counts = [0usize; 4];
        for k in keys(4096) {
            counts[ring.shard_for(&k).expect("routed") as usize] += 1;
        }
        for (b, &n) in counts.iter().enumerate() {
            // Uniform would be 1024; vnode placement should keep every
            // backend within a loose factor of it.
            assert!(n > 300, "backend {b} starved: {n}/4096");
        }
    }

    #[test]
    fn adding_a_shard_moves_only_a_fraction_and_only_to_the_new_shard() {
        let keys = keys(4096);
        for n in [1usize, 2, 3, 4, 7] {
            let old = HashRing::new(n, 0);
            let new = HashRing::new(n + 1, 0);
            let mut moved = 0;
            for k in &keys {
                let a = old.shard_for(k).expect("routed");
                let b = new.shard_for(k).expect("routed");
                if a != b {
                    moved += 1;
                    // Disruption discipline: a moved key may only land on
                    // the shard that joined, never hop between survivors.
                    assert_eq!(
                        b,
                        n as u32,
                        "key moved {a}→{b} when shard {n} joined"
                    );
                }
            }
            let expected = keys.len() / (n + 1);
            assert!(
                moved <= expected * 2,
                "{n}→{} shards moved {moved} keys (expected ≈{expected})",
                n + 1
            );
            assert!(moved > 0, "a new shard must take some keys");
        }
    }

    #[test]
    fn removing_a_shard_reassigns_only_its_keys() {
        let keys = keys(4096);
        // Removing the *last* backend is the inverse of adding it, so the
        // same bound holds with old/new swapped.
        let big = HashRing::new(5, 0);
        let small = HashRing::new(4, 0);
        for k in &keys {
            let a = big.shard_for(k).expect("routed");
            let b = small.shard_for(k).expect("routed");
            if a != 4 {
                assert_eq!(a, b, "surviving shard's key must not move");
            }
        }
    }

    #[test]
    fn empty_ring_routes_nothing() {
        assert_eq!(HashRing::new(0, 0).shard_for("k"), None);
    }
}
