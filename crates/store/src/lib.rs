//! `nshot-store`: crash-safe, content-addressed, on-disk store for
//! synthesis artifacts.
//!
//! The serving layer (PR 2) and the parallel pipeline (PR 1) memoize in
//! RAM; every process restart starts cold. This crate is the durability
//! layer underneath them: synthesis responses keyed by the canonical
//! `(options|spec)` encoding (see `nshot_logic::request_key`) are written
//! to append-only log segments and survive crashes, restarts and partial
//! writes.
//!
//! # On-disk format
//!
//! A store is a directory of segment files `seg-NNNNNNNN.log`. Each file
//! starts with a 16-byte header (magic `NSHOTSTR`, format version, segment
//! id) followed by records framed as
//!
//! ```text
//! u32 key_len | u32 val_len | u32 value_version | key | value | u32 crc32
//! ```
//!
//! (all little-endian; the CRC covers header + key + value). Appends are
//! fsynced per [`FsyncPolicy`].
//!
//! Framing version 2 — the current write format — stores large record
//! parts LZSS-compressed (bit 31 of a length field flags a part stored as
//! `varint(raw_len) ++ lzss(raw)`; the codec is `nshot-wire`'s). Version-1
//! segments stay readable, and [`StoreConfig::legacy_versions`] lets a
//! reader keep serving older *payload* versions byte-identically while new
//! writes (including compaction/promotion rewrites) land in the new
//! format.
//!
//! # Recovery
//!
//! [`Store::open`] rebuilds the index by scanning every segment:
//!
//! * a **torn tail** (frame extending past EOF, from a crash mid-write) is
//!   truncated away; every record before it survives;
//! * an intact frame with a **CRC mismatch** (bit rot, torn overwrite) is
//!   skipped individually — scanning resyncs at the next frame boundary;
//! * a record with a **stale `value_version`** is dropped so the caller
//!   transparently recompiles it in the current format;
//! * a file without our magic/format version is ignored wholesale;
//! * a **missing segment** simply contributes nothing — the index only
//!   ever references files that exist.
//!
//! Corruption is therefore never an error and never served: at worst a
//! record is recompiled.
//!
//! # Boundedness
//!
//! Segments belong to two generations, mirroring
//! `nshot_logic::BoundedCache`: when the current generation's live-record
//! count reaches half of [`StoreConfig::max_records`], the previous
//! generation's files are deleted wholesale and the generations rotate.
//! [`Store::get`] promotes previous-generation hits into the current
//! generation, so hot artifacts survive compaction indefinitely while cold
//! ones age out.

mod crc32;
mod segment;
mod store;

pub use crc32::crc32;
pub use segment::{
    decode_part, encode_header, encode_header_v1, encode_record, encode_record_v1, encoded_len,
    file_name, frame_len, parse_file_name, RecordLocation, ScanOutcome, COMPRESS_MIN,
    FORMAT_V1, FORMAT_VERSION, HEADER_LEN, MAGIC, MAX_PART_LEN, PART_COMPRESSED,
    RECORD_HEADER_LEN, RECORD_TRAILER_LEN,
};
pub use store::{
    read_entries, read_entries_with, FsyncPolicy, Store, StoreConfig, StoreReport, StoreStats,
    BATCH_FSYNC_EVERY,
};
