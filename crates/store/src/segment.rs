//! On-disk segment format: versioned header plus CRC-framed records.
//!
//! A segment is an append-only file:
//!
//! ```text
//! ┌──────────────────────────── header (16 bytes) ───────────────────────────┐
//! │ magic "NSHOTSTR" (8) │ format_version u32 LE │ segment_id u32 LE         │
//! ├──────────────────────────── record (repeated) ───────────────────────────┤
//! │ key_len u32 LE │ val_len u32 LE │ value_version u32 LE │ key │ value │   │
//! │ crc32 u32 LE over the 12 length/version bytes + key + value              │
//! └──────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. `format_version` covers the *framing*
//! (this layout); `value_version` covers the *payload* encoding and is
//! chosen by the caller, so a store can transparently drop records whose
//! payload format it no longer understands (they are recompiled and
//! rewritten at the current version).
//!
//! Recovery rules, applied by [`scan`] on every open:
//!
//! * a record whose frame extends past end-of-file is a **torn tail** (a
//!   crash mid-append): the scan reports the offset of the last good
//!   record so the store can truncate the file there, and counts the torn
//!   record as dropped;
//! * a fully framed record whose CRC does not match is **corrupt**: it is
//!   skipped (counted dropped) and the scan resynchronizes at the next
//!   frame boundary — the length fields were plausible, so later records
//!   survive a payload bit flip;
//! * a record with an unexpected `value_version` is **stale**: well-formed
//!   but not indexed, so the caller recompiles it;
//! * a segment with a bad magic or framing version is ignored wholesale.

use crate::crc32::crc32;
use std::io::{self, Read};
use std::path::Path;

/// Magic bytes opening every segment file.
pub const MAGIC: &[u8; 8] = b"NSHOTSTR";

/// Version of the framing described in the module docs.
pub const FORMAT_VERSION: u32 = 1;

/// Segment header length in bytes.
pub const HEADER_LEN: u64 = 16;

/// Fixed part of a record frame before the key bytes.
pub const RECORD_HEADER_LEN: usize = 12;

/// CRC trailer length.
pub const RECORD_TRAILER_LEN: usize = 4;

/// Upper bound on a single key or value (guards against allocating on a
/// corrupt length field).
pub const MAX_PART_LEN: u32 = 256 * 1024 * 1024;

/// File name of segment `id` (zero-padded so lexicographic order is id
/// order).
pub fn file_name(id: u64) -> String {
    format!("seg-{id:08}.log")
}

/// Parse a segment id back out of a file name produced by [`file_name`].
pub fn parse_file_name(name: &str) -> Option<u64> {
    let id = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if id.len() == 8 && id.bytes().all(|b| b.is_ascii_digit()) {
        id.parse().ok()
    } else {
        None
    }
}

/// The 16-byte segment header.
pub fn encode_header(segment_id: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&(segment_id as u32).to_le_bytes());
    h
}

/// One fully framed record, ready to append.
pub fn encode_record(key: &[u8], value: &[u8], value_version: u32) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(RECORD_HEADER_LEN + key.len() + value.len() + RECORD_TRAILER_LEN);
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
    buf.extend_from_slice(&value_version.to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Total frame length of a record with the given part lengths.
pub fn frame_len(key_len: u32, val_len: u32) -> u64 {
    RECORD_HEADER_LEN as u64 + u64::from(key_len) + u64::from(val_len) + RECORD_TRAILER_LEN as u64
}

/// Where a live record sits inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLocation {
    /// Segment id.
    pub seg: u64,
    /// Byte offset of the record frame (the `key_len` field).
    pub offset: u64,
    /// Total frame length (header + key + value + CRC).
    pub frame_len: u64,
    /// Key length in bytes.
    pub key_len: u32,
    /// Value length in bytes.
    pub val_len: u32,
}

impl RecordLocation {
    /// Byte range of the value inside the frame.
    pub fn value_range(&self) -> std::ops::Range<usize> {
        let start = RECORD_HEADER_LEN + self.key_len as usize;
        start..start + self.val_len as usize
    }
}

/// What scanning one segment found.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Well-formed current-version records in append order (later entries
    /// for the same key supersede earlier ones).
    pub entries: Vec<(String, RecordLocation)>,
    /// Records that passed framing + CRC at the expected version.
    pub recovered: u64,
    /// Records lost to torn tails or CRC mismatches.
    pub dropped: u64,
    /// Well-formed records with a different `value_version`.
    pub stale: u64,
    /// When set, the file should be truncated to this length (torn tail or
    /// unframeable remainder).
    pub truncate_to: Option<u64>,
    /// Bytes of the segment considered valid (header + scanned frames).
    pub valid_len: u64,
}

/// Scan a segment file, applying the module's recovery rules. Returns
/// `None` when the file is not a segment of ours at all (bad magic or
/// framing version) — the caller ignores it wholesale.
///
/// # Errors
///
/// Only real I/O errors propagate; corruption is reported in the outcome.
pub fn scan(path: &Path, seg_id: u64, want_version: u32) -> io::Result<Option<ScanOutcome>> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < HEADER_LEN as usize
        || &buf[..8] != MAGIC
        || u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) != FORMAT_VERSION
    {
        return Ok(None);
    }

    let mut out = ScanOutcome::default();
    let mut off = HEADER_LEN as usize;
    // Keys are not valid UTF-8? Then the record cannot have been written by
    // us (we only store string keys); it counts as corrupt.
    while off < buf.len() {
        let remaining = buf.len() - off;
        if remaining < RECORD_HEADER_LEN {
            // Partial frame header: torn tail.
            out.dropped += 1;
            out.truncate_to = Some(off as u64);
            break;
        }
        let key_len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
        let val_len = u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("4 bytes"));
        let version = u32::from_le_bytes(buf[off + 8..off + 12].try_into().expect("4 bytes"));
        let frame = frame_len(key_len, val_len);
        if key_len > MAX_PART_LEN || val_len > MAX_PART_LEN || frame > remaining as u64 {
            // The frame claims more bytes than exist: either a torn tail
            // (crash mid-append) or a corrupted length field. Both leave
            // the remainder unframeable, so truncate here.
            out.dropped += 1;
            out.truncate_to = Some(off as u64);
            break;
        }
        let frame = frame as usize;
        let body = &buf[off..off + frame - RECORD_TRAILER_LEN];
        let stored_crc = u32::from_le_bytes(
            buf[off + frame - RECORD_TRAILER_LEN..off + frame]
                .try_into()
                .expect("4 bytes"),
        );
        if crc32(body) != stored_crc {
            // Payload corruption inside an intact frame: skip just this
            // record and resynchronize at the next boundary.
            out.dropped += 1;
            off += frame;
            continue;
        }
        let key_bytes = &body[RECORD_HEADER_LEN..RECORD_HEADER_LEN + key_len as usize];
        match std::str::from_utf8(key_bytes) {
            Ok(key) if version == want_version => {
                out.entries.push((
                    key.to_owned(),
                    RecordLocation {
                        seg: seg_id,
                        offset: off as u64,
                        frame_len: frame as u64,
                        key_len,
                        val_len,
                    },
                ));
                out.recovered += 1;
            }
            Ok(_) => out.stale += 1,
            Err(_) => out.dropped += 1,
        }
        off += frame;
    }
    out.valid_len = out.truncate_to.unwrap_or(buf.len() as u64);
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nshot-segtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn write_segment(path: &Path, records: &[(&str, &[u8], u32)]) {
        let mut f = std::fs::File::create(path).expect("create");
        f.write_all(&encode_header(7)).expect("header");
        for (k, v, ver) in records {
            f.write_all(&encode_record(k.as_bytes(), v, *ver)).expect("record");
        }
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(file_name(3), "seg-00000003.log");
        assert_eq!(parse_file_name("seg-00000003.log"), Some(3));
        assert_eq!(parse_file_name("seg-3.log"), None);
        assert_eq!(parse_file_name("other.log"), None);
    }

    #[test]
    fn clean_segment_scans_fully() {
        let path = temp_file("clean.log");
        write_segment(&path, &[("a", b"alpha", 1), ("b", b"beta", 1), ("a", b"alpha2", 1)]);
        let out = scan(&path, 7, 1).expect("io").expect("ours");
        assert_eq!(out.recovered, 3);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.stale, 0);
        assert!(out.truncate_to.is_none());
        assert_eq!(out.entries.len(), 3);
        assert_eq!(out.entries[2].0, "a", "append order preserved");
    }

    #[test]
    fn torn_tail_truncates_to_last_good_record() {
        let path = temp_file("torn.log");
        write_segment(&path, &[("a", b"alpha", 1), ("b", b"beta", 1)]);
        let full = std::fs::metadata(&path).expect("meta").len();
        // Chop 3 bytes off the final record.
        let f = std::fs::OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(full - 3).expect("truncate");
        let out = scan(&path, 7, 1).expect("io").expect("ours");
        assert_eq!(out.recovered, 1);
        assert_eq!(out.dropped, 1);
        let expected_cut =
            HEADER_LEN + frame_len("a".len() as u32, "alpha".len() as u32);
        assert_eq!(out.truncate_to, Some(expected_cut));
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.entries[0].0, "a");
    }

    #[test]
    fn payload_flip_drops_only_that_record() {
        let path = temp_file("flip.log");
        write_segment(&path, &[("a", b"alpha", 1), ("b", b"beta", 1), ("c", b"gamma", 1)]);
        // Flip one byte inside record b's value.
        let rec_a = frame_len(1, 5);
        let flip_at = HEADER_LEN + rec_a + RECORD_HEADER_LEN as u64 + 1 + 2; // inside "beta"
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[flip_at as usize] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        let out = scan(&path, 7, 1).expect("io").expect("ours");
        assert_eq!(out.recovered, 2, "a and c survive");
        assert_eq!(out.dropped, 1, "b dropped");
        assert!(out.truncate_to.is_none(), "mid-file corruption does not truncate");
        let keys: Vec<&str> = out.entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "c"]);
    }

    #[test]
    fn stale_version_records_are_counted_not_indexed() {
        let path = temp_file("stale.log");
        write_segment(&path, &[("a", b"old", 1), ("b", b"new", 2)]);
        let out = scan(&path, 7, 2).expect("io").expect("ours");
        assert_eq!(out.recovered, 1);
        assert_eq!(out.stale, 1);
        assert_eq!(out.entries[0].0, "b");
    }

    #[test]
    fn foreign_file_is_ignored_wholesale() {
        let path = temp_file("foreign.log");
        std::fs::write(&path, b"not a segment at all").expect("write");
        assert!(scan(&path, 7, 1).expect("io").is_none());
    }
}
