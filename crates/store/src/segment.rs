//! On-disk segment format: versioned header plus CRC-framed records.
//!
//! A segment is an append-only file:
//!
//! ```text
//! ┌──────────────────────────── header (16 bytes) ───────────────────────────┐
//! │ magic "NSHOTSTR" (8) │ format_version u32 LE │ segment_id u32 LE         │
//! ├──────────────────────────── record (repeated) ───────────────────────────┤
//! │ key_len u32 LE │ val_len u32 LE │ value_version u32 LE │ key │ value │   │
//! │ crc32 u32 LE over the 12 length/version bytes + key + value              │
//! └──────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. `format_version` covers the *framing*;
//! `value_version` covers the *payload* encoding and is chosen by the
//! caller, so a store can transparently drop records whose payload format
//! it no longer understands (they are recompiled and rewritten at the
//! current version).
//!
//! Framing version 2 (the current write format) adds per-part compression:
//! bit 31 of `key_len`/`val_len` ([`PART_COMPRESSED`]) marks a part stored
//! as `varint(raw_len) ++ lzss(raw)` using the deterministic codec from
//! `nshot-wire`. The low 31 bits are always the *stored* byte count, so
//! the frame walk is identical for both versions; [`MAX_PART_LEN`] is
//! 256 MiB, far below bit 31, so the flag can never alias a real length.
//! Version-1 segments (no flags) remain fully readable; new segments —
//! including everything compaction and promotion rewrite — are written as
//! version 2, which is what shrinks a JSON-era store severalfold.
//!
//! Recovery rules, applied by [`scan`] on every open:
//!
//! * a record whose frame extends past end-of-file is a **torn tail** (a
//!   crash mid-append): the scan reports the offset of the last good
//!   record so the store can truncate the file there, and counts the torn
//!   record as dropped;
//! * a fully framed record whose CRC does not match is **corrupt**: it is
//!   skipped (counted dropped) and the scan resynchronizes at the next
//!   frame boundary — the length fields were plausible, so later records
//!   survive a payload bit flip;
//! * a record with an unexpected `value_version` is **stale**: well-formed
//!   but not indexed, so the caller recompiles it;
//! * a segment with a bad magic or framing version is ignored wholesale.

use crate::crc32::crc32;
use nshot_wire::{get_varint, lzss, put_varint};
use std::borrow::Cow;
use std::io::{self, Read};
use std::path::Path;

/// Magic bytes opening every segment file.
pub const MAGIC: &[u8; 8] = b"NSHOTSTR";

/// Version of the framing written by [`encode_header`]: compressed parts.
pub const FORMAT_VERSION: u32 = 2;

/// The original framing (no part compression), still readable.
pub const FORMAT_V1: u32 = 1;

/// Bit 31 of a length field: the part is stored as
/// `varint(raw_len) ++ lzss(raw)` instead of raw bytes.
pub const PART_COMPRESSED: u32 = 1 << 31;

/// Parts below this raw size are never compressed (the token overhead
/// would not pay for itself).
pub const COMPRESS_MIN: usize = 64;

/// Segment header length in bytes.
pub const HEADER_LEN: u64 = 16;

/// Fixed part of a record frame before the key bytes.
pub const RECORD_HEADER_LEN: usize = 12;

/// CRC trailer length.
pub const RECORD_TRAILER_LEN: usize = 4;

/// Upper bound on a single key or value (guards against allocating on a
/// corrupt length field). Must stay below [`PART_COMPRESSED`].
pub const MAX_PART_LEN: u32 = 256 * 1024 * 1024;

const _: () = assert!(MAX_PART_LEN < PART_COMPRESSED);

/// File name of segment `id` (zero-padded so lexicographic order is id
/// order).
pub fn file_name(id: u64) -> String {
    format!("seg-{id:08}.log")
}

/// Parse a segment id back out of a file name produced by [`file_name`].
pub fn parse_file_name(name: &str) -> Option<u64> {
    let id = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if id.len() == 8 && id.bytes().all(|b| b.is_ascii_digit()) {
        id.parse().ok()
    } else {
        None
    }
}

/// The 16-byte segment header (always the current [`FORMAT_VERSION`]).
pub fn encode_header(segment_id: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&(segment_id as u32).to_le_bytes());
    h
}

/// A version-1 header, for tests and migration tooling that need to write
/// legacy segments.
pub fn encode_header_v1(segment_id: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = encode_header(segment_id);
    h[8..12].copy_from_slice(&FORMAT_V1.to_le_bytes());
    h
}

/// Compress one part when it pays: returns the stored bytes and whether
/// the [`PART_COMPRESSED`] flag must be set.
fn encode_part(raw: &[u8]) -> (Cow<'_, [u8]>, bool) {
    if raw.len() >= COMPRESS_MIN {
        let mut stored = Vec::with_capacity(raw.len() / 2 + 8);
        put_varint(&mut stored, raw.len() as u64);
        stored.extend_from_slice(&lzss::compress(raw));
        if stored.len() < raw.len() {
            return (Cow::Owned(stored), true);
        }
    }
    (Cow::Borrowed(raw), false)
}

/// Decode one stored part back to raw bytes. Uncompressed parts come back
/// as a zero-copy borrow of `stored`; compressed parts are replayed
/// through the LZSS decoder. `None` means the stored bytes are corrupt
/// (bad varint, a stream that does not replay, or a raw length over
/// [`MAX_PART_LEN`]) — the caller treats the record as damaged.
pub fn decode_part(stored: &[u8], compressed: bool) -> Option<Cow<'_, [u8]>> {
    if !compressed {
        return Some(Cow::Borrowed(stored));
    }
    let (raw_len, used) = get_varint(stored).ok()?;
    if raw_len > u64::from(MAX_PART_LEN) {
        return None;
    }
    lzss::decompress(&stored[used..], raw_len as usize)
        .ok()
        .map(Cow::Owned)
}

/// One fully framed record, ready to append. Parts ≥ [`COMPRESS_MIN`]
/// bytes are LZSS-compressed when that actually shrinks them.
pub fn encode_record(key: &[u8], value: &[u8], value_version: u32) -> Vec<u8> {
    let (key_stored, key_flag) = encode_part(key);
    let (val_stored, val_flag) = encode_part(value);
    let key_field = key_stored.len() as u32 | if key_flag { PART_COMPRESSED } else { 0 };
    let val_field = val_stored.len() as u32 | if val_flag { PART_COMPRESSED } else { 0 };
    let mut buf = Vec::with_capacity(
        RECORD_HEADER_LEN + key_stored.len() + val_stored.len() + RECORD_TRAILER_LEN,
    );
    buf.extend_from_slice(&key_field.to_le_bytes());
    buf.extend_from_slice(&val_field.to_le_bytes());
    buf.extend_from_slice(&value_version.to_le_bytes());
    buf.extend_from_slice(&key_stored);
    buf.extend_from_slice(&val_stored);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// A version-1 record frame: raw parts, no compression flags — for tests
/// and migration tooling fabricating legacy segments.
pub fn encode_record_v1(key: &[u8], value: &[u8], value_version: u32) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(RECORD_HEADER_LEN + key.len() + value.len() + RECORD_TRAILER_LEN);
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
    buf.extend_from_slice(&value_version.to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Total frame length of a record whose parts are *stored* at the given
/// lengths (compression flags stripped).
pub fn frame_len(key_len: u32, val_len: u32) -> u64 {
    RECORD_HEADER_LEN as u64 + u64::from(key_len) + u64::from(val_len) + RECORD_TRAILER_LEN as u64
}

/// On-disk frame length [`encode_record`] would produce for this pair —
/// what tests and size accounting should use now that parts compress.
pub fn encoded_len(key: &[u8], value: &[u8]) -> u64 {
    let (key_stored, _) = encode_part(key);
    let (val_stored, _) = encode_part(value);
    frame_len(key_stored.len() as u32, val_stored.len() as u32)
}

/// Where a live record sits inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLocation {
    /// Segment id.
    pub seg: u64,
    /// Byte offset of the record frame (the `key_len` field).
    pub offset: u64,
    /// Total frame length (header + stored key + stored value + CRC).
    pub frame_len: u64,
    /// Stored key length in bytes (flag stripped).
    pub key_len: u32,
    /// Stored value length in bytes (flag stripped).
    pub val_len: u32,
    /// The key part carries the [`PART_COMPRESSED`] flag.
    pub key_compressed: bool,
    /// The value part carries the [`PART_COMPRESSED`] flag.
    pub val_compressed: bool,
    /// The record's `value_version` as written.
    pub version: u32,
}

impl RecordLocation {
    /// Byte range of the *stored* value inside the frame (decode with
    /// [`decode_part`] and `val_compressed`).
    pub fn value_range(&self) -> std::ops::Range<usize> {
        let start = RECORD_HEADER_LEN + self.key_len as usize;
        start..start + self.val_len as usize
    }
}

/// What scanning one segment found.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Well-formed wanted-version records in append order (later entries
    /// for the same key supersede earlier ones).
    pub entries: Vec<(String, RecordLocation)>,
    /// Records that passed framing + CRC at a wanted version.
    pub recovered: u64,
    /// Records lost to torn tails or CRC mismatches.
    pub dropped: u64,
    /// Well-formed records with a `value_version` outside the wanted set.
    pub stale: u64,
    /// When set, the file should be truncated to this length (torn tail or
    /// unframeable remainder).
    pub truncate_to: Option<u64>,
    /// Bytes of the segment considered valid (header + scanned frames).
    pub valid_len: u64,
}

/// Scan a segment file, applying the module's recovery rules. Records
/// whose `value_version` appears in `want_versions` are indexed (the first
/// entry is conventionally the current version, the rest legacy versions
/// still readable); others count as stale. Returns `None` when the file
/// is not a segment of ours at all (bad magic or framing version) — the
/// caller ignores it wholesale.
///
/// # Errors
///
/// Only real I/O errors propagate; corruption is reported in the outcome.
pub fn scan(path: &Path, seg_id: u64, want_versions: &[u32]) -> io::Result<Option<ScanOutcome>> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < HEADER_LEN as usize || &buf[..8] != MAGIC {
        return Ok(None);
    }
    let format = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    if format != FORMAT_VERSION && format != FORMAT_V1 {
        return Ok(None);
    }

    let mut out = ScanOutcome::default();
    let mut off = HEADER_LEN as usize;
    while off < buf.len() {
        let remaining = buf.len() - off;
        if remaining < RECORD_HEADER_LEN {
            // Partial frame header: torn tail.
            out.dropped += 1;
            out.truncate_to = Some(off as u64);
            break;
        }
        let key_field = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
        let val_field = u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("4 bytes"));
        let version = u32::from_le_bytes(buf[off + 8..off + 12].try_into().expect("4 bytes"));
        // Version-1 frames never set the compression bit; one that appears
        // to is just a corrupt length field.
        let (key_compressed, val_compressed) = if format == FORMAT_V1 {
            (false, false)
        } else {
            (key_field & PART_COMPRESSED != 0, val_field & PART_COMPRESSED != 0)
        };
        let key_len = key_field & !PART_COMPRESSED;
        let val_len = val_field & !PART_COMPRESSED;
        let bad_lengths = key_len > MAX_PART_LEN
            || val_len > MAX_PART_LEN
            || (format == FORMAT_V1 && (key_field | val_field) & PART_COMPRESSED != 0);
        let frame = frame_len(key_len, val_len);
        if bad_lengths || frame > remaining as u64 {
            // The frame claims more bytes than exist: either a torn tail
            // (crash mid-append) or a corrupted length field. Both leave
            // the remainder unframeable, so truncate here.
            out.dropped += 1;
            out.truncate_to = Some(off as u64);
            break;
        }
        let frame = frame as usize;
        let body = &buf[off..off + frame - RECORD_TRAILER_LEN];
        let stored_crc = u32::from_le_bytes(
            buf[off + frame - RECORD_TRAILER_LEN..off + frame]
                .try_into()
                .expect("4 bytes"),
        );
        if crc32(body) != stored_crc {
            // Payload corruption inside an intact frame: skip just this
            // record and resynchronize at the next boundary.
            out.dropped += 1;
            off += frame;
            continue;
        }
        if !want_versions.contains(&version) {
            out.stale += 1;
            off += frame;
            continue;
        }
        // Keys that are not valid UTF-8 (or a compressed key that does not
        // replay) cannot have been written by us; count the record corrupt.
        let key_stored = &body[RECORD_HEADER_LEN..RECORD_HEADER_LEN + key_len as usize];
        let key = decode_part(key_stored, key_compressed)
            .and_then(|raw| std::str::from_utf8(&raw).ok().map(str::to_owned));
        match key {
            Some(key) => {
                out.entries.push((
                    key,
                    RecordLocation {
                        seg: seg_id,
                        offset: off as u64,
                        frame_len: frame as u64,
                        key_len,
                        val_len,
                        key_compressed,
                        val_compressed,
                        version,
                    },
                ));
                out.recovered += 1;
            }
            None => out.dropped += 1,
        }
        off += frame;
    }
    out.valid_len = out.truncate_to.unwrap_or(buf.len() as u64);
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nshot-segtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn write_segment(path: &Path, records: &[(&str, &[u8], u32)]) {
        let mut f = std::fs::File::create(path).expect("create");
        f.write_all(&encode_header(7)).expect("header");
        for (k, v, ver) in records {
            f.write_all(&encode_record(k.as_bytes(), v, *ver)).expect("record");
        }
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(file_name(3), "seg-00000003.log");
        assert_eq!(parse_file_name("seg-00000003.log"), Some(3));
        assert_eq!(parse_file_name("seg-3.log"), None);
        assert_eq!(parse_file_name("other.log"), None);
    }

    #[test]
    fn clean_segment_scans_fully() {
        let path = temp_file("clean.log");
        write_segment(&path, &[("a", b"alpha", 1), ("b", b"beta", 1), ("a", b"alpha2", 1)]);
        let out = scan(&path, 7, &[1]).expect("io").expect("ours");
        assert_eq!(out.recovered, 3);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.stale, 0);
        assert!(out.truncate_to.is_none());
        assert_eq!(out.entries.len(), 3);
        assert_eq!(out.entries[2].0, "a", "append order preserved");
    }

    #[test]
    fn torn_tail_truncates_to_last_good_record() {
        let path = temp_file("torn.log");
        write_segment(&path, &[("a", b"alpha", 1), ("b", b"beta", 1)]);
        let full = std::fs::metadata(&path).expect("meta").len();
        // Chop 3 bytes off the final record.
        let f = std::fs::OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(full - 3).expect("truncate");
        let out = scan(&path, 7, &[1]).expect("io").expect("ours");
        assert_eq!(out.recovered, 1);
        assert_eq!(out.dropped, 1);
        let expected_cut = HEADER_LEN + encoded_len(b"a", b"alpha");
        assert_eq!(out.truncate_to, Some(expected_cut));
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.entries[0].0, "a");
    }

    #[test]
    fn payload_flip_drops_only_that_record() {
        let path = temp_file("flip.log");
        write_segment(&path, &[("a", b"alpha", 1), ("b", b"beta", 1), ("c", b"gamma", 1)]);
        // Flip one byte inside record b's value (short parts are stored
        // raw, so the layout matches version 1).
        let rec_a = frame_len(1, 5);
        let flip_at = HEADER_LEN + rec_a + RECORD_HEADER_LEN as u64 + 1 + 2; // inside "beta"
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[flip_at as usize] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        let out = scan(&path, 7, &[1]).expect("io").expect("ours");
        assert_eq!(out.recovered, 2, "a and c survive");
        assert_eq!(out.dropped, 1, "b dropped");
        assert!(out.truncate_to.is_none(), "mid-file corruption does not truncate");
        let keys: Vec<&str> = out.entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "c"]);
    }

    #[test]
    fn stale_version_records_are_counted_not_indexed() {
        let path = temp_file("stale.log");
        write_segment(&path, &[("a", b"old", 1), ("b", b"new", 2)]);
        let out = scan(&path, 7, &[2]).expect("io").expect("ours");
        assert_eq!(out.recovered, 1);
        assert_eq!(out.stale, 1);
        assert_eq!(out.entries[0].0, "b");
    }

    #[test]
    fn legacy_versions_are_indexed_alongside_current() {
        let path = temp_file("legacy.log");
        write_segment(&path, &[("a", b"old", 1), ("b", b"new", 2), ("c", b"older", 7)]);
        let out = scan(&path, 7, &[2, 1]).expect("io").expect("ours");
        assert_eq!(out.recovered, 2);
        assert_eq!(out.stale, 1, "version 7 is outside the wanted set");
        let got: Vec<(&str, u32)> =
            out.entries.iter().map(|(k, loc)| (k.as_str(), loc.version)).collect();
        assert_eq!(got, [("a", 1), ("b", 2)]);
    }

    #[test]
    fn large_repetitive_parts_compress_and_round_trip() {
        let key = "spec|".repeat(40); // 200 bytes, repetitive like a request key
        let value = ".names a b c\n110 1\n101 1\n".repeat(100).into_bytes();
        let frame = encode_record(key.as_bytes(), &value, 2);
        assert!(
            (frame.len() as u64) * 3 < frame_len(key.len() as u32, value.len() as u32),
            "part compression should shrink a repetitive record ≥3x, got {}",
            frame.len()
        );
        let path = temp_file("compressed.log");
        write_segment(&path, &[(&key, &value, 2)]);
        let out = scan(&path, 7, &[2]).expect("io").expect("ours");
        assert_eq!(out.recovered, 1);
        let (scanned_key, loc) = &out.entries[0];
        assert_eq!(scanned_key, &key);
        assert!(loc.key_compressed && loc.val_compressed);
        let bytes = std::fs::read(&path).expect("read");
        let stored = &bytes[HEADER_LEN as usize..][loc.value_range()];
        let raw = decode_part(stored, loc.val_compressed).expect("decode");
        assert_eq!(raw.as_ref(), value.as_slice());
    }

    #[test]
    fn uncompressed_parts_decode_zero_copy() {
        let stored = b"short value";
        match decode_part(stored, false) {
            Some(Cow::Borrowed(b)) => assert_eq!(b, stored),
            other => panic!("expected a borrow, got {other:?}"),
        }
        // Corrupt compressed parts are refused, not replayed.
        assert!(decode_part(b"\xff\xff\xff", true).is_none());
    }

    #[test]
    fn v1_segments_remain_readable() {
        let path = temp_file("v1.log");
        let mut f = std::fs::File::create(&path).expect("create");
        f.write_all(&encode_header_v1(7)).expect("header");
        // A version-1 record stores raw parts, whatever their size.
        let value = b"x".repeat(500);
        f.write_all(&encode_record_v1(b"key1", &value, 1)).expect("record");
        drop(f);
        let out = scan(&path, 7, &[1]).expect("io").expect("ours");
        assert_eq!(out.recovered, 1);
        let (key, loc) = &out.entries[0];
        assert_eq!(key, "key1");
        assert!(!loc.key_compressed && !loc.val_compressed);
        assert_eq!(loc.val_len, 500);
    }

    #[test]
    fn foreign_file_is_ignored_wholesale() {
        let path = temp_file("foreign.log");
        std::fs::write(&path, b"not a segment at all").expect("write");
        assert!(scan(&path, 7, &[1]).expect("io").is_none());
    }
}
