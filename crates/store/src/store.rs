//! The store proper: an index over CRC-framed append-only segments.
//!
//! See the crate docs for the design contract; briefly: [`Store::open`]
//! rebuilds the in-memory index by scanning every segment (applying the
//! recovery rules in [`crate::segment`]), [`Store::put`] appends a framed
//! record and fsyncs per [`FsyncPolicy`], and boundedness comes from the
//! same two-generation philosophy as `nshot_logic::BoundedCache`: segments
//! belong to a *previous* or *current* generation; when the current
//! generation's live-record count reaches half the cap, the previous
//! generation's files are deleted wholesale and the generations rotate.
//! [`Store::get`] *promotes* a previous-generation hit by re-appending the
//! record into the active segment, so the working set survives rotation
//! while cold artifacts age out — eviction can only cause recompilation,
//! never a wrong answer.

use crate::crc32::crc32;
use crate::segment::{
    self, RecordLocation, FORMAT_VERSION, HEADER_LEN, MAX_PART_LEN, PART_COMPRESSED,
    RECORD_HEADER_LEN, RECORD_TRAILER_LEN,
};
use nshot_obs::{Counter, Gauge, Registry};
use nshot_par::FxHashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// When to fsync the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append — maximum durability, slowest.
    Always,
    /// `fdatasync` every [`BATCH_FSYNC_EVERY`] appends and on seal/flush —
    /// bounded data-loss window, near-`Never` throughput. The default.
    #[default]
    Batch,
    /// Never fsync explicitly; the OS decides. A crash may lose the tail,
    /// which recovery then truncates.
    Never,
}

/// Appends between fsyncs under [`FsyncPolicy::Batch`].
pub const BATCH_FSYNC_EVERY: usize = 64;

impl FsyncPolicy {
    /// Parse a CLI name.
    ///
    /// # Errors
    ///
    /// A message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "batch" => Ok(FsyncPolicy::Batch),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("unknown fsync policy '{other}' (always|batch|never)")),
        }
    }

    /// CLI/wire name.
    pub fn name(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Store configuration. [`StoreConfig::new`] gives the production
/// defaults; tests shrink `max_records`/`segment_max_bytes` to force
/// rotation and sealing.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
    /// Two-generation live-record cap (minimum 2, one per generation).
    pub max_records: usize,
    /// Seal the active segment once it exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Payload format version written with every record; records carrying
    /// a version that is neither this nor in [`StoreConfig::legacy_versions`]
    /// are dropped (as "stale") on open and transparently recompiled by
    /// the caller.
    pub value_version: u32,
    /// Older payload versions the caller can still decode. Records at
    /// these versions are indexed and served (their version is preserved
    /// on promotion); new writes always use `value_version`.
    pub legacy_versions: Vec<u32>,
}

impl StoreConfig {
    /// Defaults: batch fsync, 65 536 records, 8 MiB segments, version 1,
    /// no legacy versions.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Batch,
            max_records: 65_536,
            segment_max_bytes: 8 * 1024 * 1024,
            value_version: 1,
            legacy_versions: Vec::new(),
        }
    }

    /// The versions [`Store::open`] indexes: current first, then legacy.
    pub fn wanted_versions(&self) -> Vec<u32> {
        let mut want = vec![self.value_version];
        for v in &self.legacy_versions {
            if !want.contains(v) {
                want.push(*v);
            }
        }
        want
    }
}

/// Monotone per-store counters (a plain snapshot; the same figures are
/// mirrored to the process-global [`Registry`] as `nshot_store_*` series).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` calls answered from the store.
    pub hits: u64,
    /// `get` calls for absent (or just-invalidated) keys.
    pub misses: u64,
    /// Records appended (puts + promotions).
    pub appends: u64,
    /// Previous-generation hits re-appended into the current generation.
    pub promotions: u64,
    /// Well-formed current-version records found at open.
    pub recovered_records: u64,
    /// Records lost at open to torn tails or CRC mismatches.
    pub dropped_records: u64,
    /// Well-formed records at open with a different value version.
    pub stale_records: u64,
    /// Generation rotations (previous generation deleted wholesale).
    pub compactions: u64,
    /// Live records deleted by rotation.
    pub evictions: u64,
    /// Records that failed CRC verification at read time.
    pub read_corruptions: u64,
}

/// What a store saw over its lifetime — the shutdown summary printed by
/// `nshot-serve --store` and `nshot-batch`.
#[derive(Debug, Clone)]
pub struct StoreReport {
    /// Live records in the index.
    pub records: usize,
    /// Segment files on disk.
    pub segments: usize,
    /// Total bytes across segment files.
    pub bytes: u64,
    /// Final counters.
    pub stats: StoreStats,
}

impl std::fmt::Display for StoreReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "records {}, segments {}, bytes {}, compactions {} \
             (recovered {}, dropped {}, stale {}, evictions {})",
            self.records,
            self.segments,
            self.bytes,
            self.stats.compactions,
            self.stats.recovered_records,
            self.stats.dropped_records,
            self.stats.stale_records,
            self.stats.evictions,
        )
    }
}

/// Handles to the `nshot_store_*` series in the process-global registry.
/// Counters accumulate across every store opened in the process; gauges
/// reflect the most recently mutated store.
struct Metrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    appends: Arc<Counter>,
    promotions: Arc<Counter>,
    recovered: Arc<Counter>,
    dropped: Arc<Counter>,
    stale: Arc<Counter>,
    compactions: Arc<Counter>,
    evictions: Arc<Counter>,
    read_corruptions: Arc<Counter>,
    records: Arc<Gauge>,
    segments: Arc<Gauge>,
    bytes: Arc<Gauge>,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        Metrics {
            hits: r.counter("nshot_store_hits_total"),
            misses: r.counter("nshot_store_misses_total"),
            appends: r.counter("nshot_store_appends_total"),
            promotions: r.counter("nshot_store_promotions_total"),
            recovered: r.counter("nshot_store_recovered_records_total"),
            dropped: r.counter("nshot_store_dropped_records_total"),
            stale: r.counter("nshot_store_stale_records_total"),
            compactions: r.counter("nshot_store_compactions_total"),
            evictions: r.counter("nshot_store_evictions_total"),
            read_corruptions: r.counter("nshot_store_read_corruptions_total"),
            records: r.gauge("nshot_store_records"),
            segments: r.gauge("nshot_store_segments"),
            bytes: r.gauge("nshot_store_bytes"),
        }
    })
}

/// A crash-safe, content-addressed, bounded on-disk artifact store.
///
/// Not `Sync`: one owner at a time (the server funnels writes through a
/// dedicated write-behind thread). Opening the same directory from two
/// processes concurrently is unsupported.
#[derive(Debug)]
pub struct Store {
    config: StoreConfig,
    half_cap: usize,
    index: FxHashMap<String, RecordLocation>,
    /// Sealed segments of the previous generation (deleted wholesale at
    /// the next rotation).
    prev_segs: Vec<u64>,
    /// Segments of the current generation; the last one is active.
    cur_segs: Vec<u64>,
    /// Live index entries pointing into the current generation.
    cur_live: usize,
    /// Bytes per live segment (valid prefix for recovered ones).
    seg_bytes: FxHashMap<u64, u64>,
    active: File,
    active_id: u64,
    active_len: u64,
    next_seg_id: u64,
    dirty_appends: usize,
    stats: StoreStats,
}

impl Store {
    /// Open (or create) the store at `config.dir`, rebuilding the index by
    /// scanning every segment and applying the recovery rules: torn tails
    /// are truncated, CRC-corrupt records skipped, stale-version records
    /// dropped for recompilation. All pre-existing segments form the
    /// *previous* generation; a fresh active segment starts the current
    /// one, so a restarted service's working set is promoted on first use.
    ///
    /// # Errors
    ///
    /// Real I/O failures only (directory creation, segment creation,
    /// unreadable files); corruption is recovered from, not reported as an
    /// error.
    pub fn open(config: StoreConfig) -> io::Result<Store> {
        std::fs::create_dir_all(&config.dir)?;
        let mut ids: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(id) = name.to_str().and_then(segment::parse_file_name) {
                ids.push((id, entry.path()));
            }
        }
        ids.sort_unstable_by_key(|(id, _)| *id);

        let mut stats = StoreStats::default();
        let mut index: FxHashMap<String, RecordLocation> = FxHashMap::default();
        let mut seg_bytes: FxHashMap<u64, u64> = FxHashMap::default();
        let mut max_id = 0u64;
        let want = config.wanted_versions();
        for (id, path) in &ids {
            max_id = max_id.max(*id);
            let Some(outcome) = segment::scan(path, *id, &want)? else {
                continue; // not one of our segments; leave it alone
            };
            if let Some(cut) = outcome.truncate_to {
                // Torn tail: truncate so future scans (and any external
                // tooling) see only whole records.
                OpenOptions::new().write(true).open(path)?.set_len(cut)?;
            }
            stats.recovered_records += outcome.recovered;
            stats.dropped_records += outcome.dropped;
            stats.stale_records += outcome.stale;
            for (key, loc) in outcome.entries {
                index.insert(key, loc); // last writer wins across id order
            }
            seg_bytes.insert(*id, outcome.valid_len);
        }

        // Prune segments no live record points into (all-stale, all-corrupt
        // or fully superseded): they would never be read again.
        let mut prev_segs = Vec::new();
        for (id, path) in &ids {
            if !seg_bytes.contains_key(id) {
                continue; // foreign file, kept untouched
            }
            if index.values().any(|loc| loc.seg == *id) {
                prev_segs.push(*id);
            } else {
                let _ = std::fs::remove_file(path);
                seg_bytes.remove(id);
            }
        }

        let active_id = max_id + 1;
        let (active, active_len) = create_segment(&config.dir, active_id, config.fsync)?;
        seg_bytes.insert(active_id, active_len);

        let m = metrics();
        m.recovered.add(stats.recovered_records);
        m.dropped.add(stats.dropped_records);
        m.stale.add(stats.stale_records);

        let store = Store {
            half_cap: (config.max_records / 2).max(1),
            config,
            index,
            prev_segs,
            cur_segs: vec![active_id],
            cur_live: 0,
            seg_bytes,
            active,
            active_id,
            active_len,
            next_seg_id: active_id + 1,
            dirty_appends: 0,
            stats,
        };
        store.refresh_gauges();
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Live records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no records are live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` has a live record (no I/O, no promotion, no counter).
    pub fn contains(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The shutdown summary.
    pub fn report(&self) -> StoreReport {
        StoreReport {
            records: self.index.len(),
            segments: self.seg_bytes.len(),
            bytes: self.seg_bytes.values().sum(),
            stats: self.stats,
        }
    }

    /// Store `value` under `key`, replacing any existing record. The
    /// record is CRC-framed, appended to the active segment (sealing it
    /// first if over the size threshold) and fsynced per policy; the
    /// current generation rotates first if it is full.
    ///
    /// # Errors
    ///
    /// I/O failures appending or fsyncing; oversized keys/values are
    /// `InvalidInput`.
    pub fn put(&mut self, key: &str, value: &[u8]) -> io::Result<()> {
        if key.len() as u64 > u64::from(MAX_PART_LEN)
            || value.len() as u64 > u64::from(MAX_PART_LEN)
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key or value exceeds the 256 MiB framing limit",
            ));
        }
        if !self.in_current(key) {
            self.rotate_if_full()?;
        }
        self.append(key, value, self.config.value_version)?;
        Ok(())
    }

    /// Fetch the value stored under `key`, verifying its CRC at read time
    /// (a record corrupted *after* open is invalidated and reported as a
    /// miss, never served). A hit found in the previous generation is
    /// promoted — re-appended into the current one — so it survives the
    /// next rotation, mirroring `BoundedCache::get`.
    pub fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        let Some(loc) = self.index.get(key).copied() else {
            self.stats.misses += 1;
            metrics().misses.inc();
            return None;
        };
        let Some(value) = self.read_value(&loc) else {
            // CRC or I/O failure on a record we indexed at open: drop it.
            self.invalidate(key, &loc);
            self.stats.misses += 1;
            metrics().misses.inc();
            return None;
        };
        if self.prev_segs.contains(&loc.seg) {
            // Promotion failures are not fatal — the value is still good,
            // the record just stays in the doomed generation. The record's
            // own payload version travels with it: the store cannot
            // transcode payloads, only reframe them (legacy records land
            // in a current-format segment, compressed, still legacy-typed).
            let promoted = self
                .rotate_if_full()
                .and_then(|()| self.append(key, &value, loc.version))
                .is_ok();
            if promoted {
                self.stats.promotions += 1;
                metrics().promotions.inc();
            }
        }
        self.stats.hits += 1;
        metrics().hits.inc();
        Some(value)
    }

    /// Every live `(key, value)` pair, sorted by key — the warm-start scan.
    /// Reads bypass hit/miss counters and do not promote (bulk warming must
    /// not rewrite the whole store on every restart); records failing their
    /// read-time CRC check are invalidated and skipped.
    pub fn entries(&mut self) -> Vec<(String, Vec<u8>)> {
        self.entries_versioned()
            .into_iter()
            .map(|(key, _, value)| (key, value))
            .collect()
    }

    /// Like [`Store::entries`], but carrying each record's `value_version`
    /// so a caller holding legacy versions can pick the right payload
    /// decoder (and rewrite legacy records at the current version).
    pub fn entries_versioned(&mut self) -> Vec<(String, u32, Vec<u8>)> {
        let mut keys: Vec<String> = self.index.keys().cloned().collect();
        keys.sort_unstable();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let loc = self.index[&key];
            match self.read_value(&loc) {
                Some(value) => out.push((key, loc.version, value)),
                None => self.invalidate(&key, &loc),
            }
        }
        out
    }

    /// The `value_version` of the live record under `key`, if any (no I/O).
    pub fn version_of(&self, key: &str) -> Option<u32> {
        self.index.get(key).map(|loc| loc.version)
    }

    /// Fsync the active segment regardless of policy.
    ///
    /// # Errors
    ///
    /// The underlying `fdatasync` failure.
    pub fn flush(&mut self) -> io::Result<()> {
        self.active.sync_data()?;
        self.dirty_appends = 0;
        Ok(())
    }

    fn path_of(&self, seg: u64) -> PathBuf {
        self.config.dir.join(segment::file_name(seg))
    }

    fn in_current(&self, key: &str) -> bool {
        self.index
            .get(key)
            .is_some_and(|loc| self.cur_segs.contains(&loc.seg))
    }

    /// Read a record frame back and verify it end to end. Compressed
    /// parts are replayed; uncompressed ones are sliced straight out of
    /// the frame (the CRC has already vouched for the bytes).
    fn read_value(&self, loc: &RecordLocation) -> Option<Vec<u8>> {
        let mut file = File::open(self.path_of(loc.seg)).ok()?;
        file.seek(SeekFrom::Start(loc.offset)).ok()?;
        let mut frame = vec![0u8; loc.frame_len as usize];
        file.read_exact(&mut frame).ok()?;
        let body_len = loc.frame_len as usize - RECORD_TRAILER_LEN;
        let stored = u32::from_le_bytes(frame[body_len..].try_into().expect("4 bytes"));
        if crc32(&frame[..body_len]) != stored {
            return None;
        }
        segment::decode_part(&frame[loc.value_range()], loc.val_compressed)
            .map(|raw| raw.into_owned())
    }

    /// Drop an index entry whose on-disk record failed verification.
    fn invalidate(&mut self, key: &str, loc: &RecordLocation) {
        if self.cur_segs.contains(&loc.seg) {
            self.cur_live -= 1;
        }
        self.index.remove(key);
        self.stats.read_corruptions += 1;
        metrics().read_corruptions.inc();
        self.refresh_gauges();
    }

    /// Append one framed record to the active segment (sealing first if it
    /// is over the size threshold) and index it. `version` is the payload
    /// version stamped on the record — `put` writes the configured current
    /// version, promotion carries the record's own.
    fn append(&mut self, key: &str, value: &[u8], version: u32) -> io::Result<()> {
        let frame = segment::encode_record(key.as_bytes(), value, version);
        if self.active_len > HEADER_LEN
            && self.active_len + frame.len() as u64 > self.config.segment_max_bytes
        {
            self.seal_and_start_segment()?;
        }
        let offset = self.active_len;
        self.active.write_all(&frame)?;
        self.active_len += frame.len() as u64;
        self.seg_bytes.insert(self.active_id, self.active_len);

        // Recover the stored lengths/flags from the frame the encoder just
        // built (parts may have compressed).
        let key_field = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
        let val_field = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        let loc = RecordLocation {
            seg: self.active_id,
            offset,
            frame_len: frame.len() as u64,
            key_len: key_field & !PART_COMPRESSED,
            val_len: val_field & !PART_COMPRESSED,
            key_compressed: key_field & PART_COMPRESSED != 0,
            val_compressed: val_field & PART_COMPRESSED != 0,
            version,
        };
        let replaced_in_cur = self
            .index
            .insert(key.to_owned(), loc)
            .is_some_and(|old| self.cur_segs.contains(&old.seg));
        if !replaced_in_cur {
            self.cur_live += 1;
        }
        self.stats.appends += 1;
        metrics().appends.inc();

        self.dirty_appends += 1;
        match self.config.fsync {
            FsyncPolicy::Always => self.flush()?,
            FsyncPolicy::Batch if self.dirty_appends >= BATCH_FSYNC_EVERY => self.flush()?,
            FsyncPolicy::Batch | FsyncPolicy::Never => {}
        }
        self.refresh_gauges();
        Ok(())
    }

    /// Two-generation rotation, the `BoundedCache` eviction philosophy on
    /// disk: once the current generation holds half the cap, the previous
    /// generation's files are deleted wholesale (dropping whatever still
    /// lives only there) and the generations rotate around a fresh active
    /// segment.
    fn rotate_if_full(&mut self) -> io::Result<()> {
        if self.cur_live < self.half_cap {
            return Ok(());
        }
        let doomed = std::mem::take(&mut self.prev_segs);
        let before = self.index.len();
        self.index.retain(|_, loc| !doomed.contains(&loc.seg));
        let evicted = (before - self.index.len()) as u64;
        for seg in &doomed {
            let _ = std::fs::remove_file(self.path_of(*seg));
            self.seg_bytes.remove(seg);
        }
        self.seal_and_start_segment()?;
        // Everything written so far moves to the previous generation; the
        // just-created active segment alone is the new current one.
        let mut cur = std::mem::replace(&mut self.cur_segs, vec![self.active_id]);
        cur.pop(); // the new active segment is not part of the old generation
        self.prev_segs = cur;
        self.cur_live = 0;
        self.stats.compactions += 1;
        self.stats.evictions += evicted;
        let m = metrics();
        m.compactions.inc();
        m.evictions.add(evicted);
        self.refresh_gauges();
        Ok(())
    }

    /// Seal the active segment (flushing it durable unless policy is
    /// `Never`) and open the next one.
    fn seal_and_start_segment(&mut self) -> io::Result<()> {
        if self.config.fsync != FsyncPolicy::Never {
            self.flush()?;
        }
        let id = self.next_seg_id;
        self.next_seg_id += 1;
        let (file, len) = create_segment(&self.config.dir, id, self.config.fsync)?;
        self.active = file;
        self.active_id = id;
        self.active_len = len;
        self.seg_bytes.insert(id, len);
        self.cur_segs.push(id);
        Ok(())
    }

    fn refresh_gauges(&self) {
        let m = metrics();
        m.records.set(self.index.len() as u64);
        m.segments.set(self.seg_bytes.len() as u64);
        m.bytes.set(self.seg_bytes.values().sum());
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort durability on the way out…
        if self.config.fsync != FsyncPolicy::Never {
            let _ = self.flush();
        }
        // …and no litter: an active segment that never received a record
        // (e.g. a read-only warm-start open) is removed again.
        if self.active_len == HEADER_LEN
            && !self.index.values().any(|loc| loc.seg == self.active_id)
        {
            let _ = std::fs::remove_file(self.path_of(self.active_id));
        }
    }
}

/// Create segment file `id` with its header; fsync the file (and,
/// best-effort, the directory so the new name is durable) unless the
/// policy is `Never`.
fn create_segment(dir: &Path, id: u64, fsync: FsyncPolicy) -> io::Result<(File, u64)> {
    let path = dir.join(segment::file_name(id));
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)?;
    file.write_all(&segment::encode_header(id))?;
    if fsync != FsyncPolicy::Never {
        file.sync_data()?;
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok((file, HEADER_LEN))
}

const _: () = {
    // Compile-time sanity: the frame layout constants agree.
    assert!(RECORD_HEADER_LEN == 12);
    assert!(RECORD_TRAILER_LEN == 4);
    assert!(FORMAT_VERSION == 2);
};

/// Read every live `(key, value)` pair from a store directory **without
/// becoming a writer**: no tail truncation, no segment pruning, no active
/// segment — the directory's bytes are untouched. Last writer (highest
/// segment id, latest offset) wins per key; torn tails, CRC-corrupt and
/// stale-version records are skipped exactly as [`Store::open`] would drop
/// them. Output is sorted by key, like [`Store::entries`].
///
/// This is the warm path for shared-nothing shard backends: any number of
/// processes can scan one directory concurrently while (at most) one
/// writer owns it — the writer only ever *appends* to its active segment
/// and deletes whole sealed files, so a concurrent scan sees either a
/// complete record or a skippable partial one, never a torn mix.
///
/// # Errors
///
/// Real I/O failures only (unreadable directory or file); corruption and a
/// missing directory (`NotFound` → empty) are not errors.
pub fn read_entries(dir: &Path, value_version: u32) -> io::Result<Vec<(String, Vec<u8>)>> {
    Ok(read_entries_with(dir, &[value_version])?
        .into_iter()
        .map(|(key, _, value)| (key, value))
        .collect())
}

/// [`read_entries`] accepting several payload versions at once — the warm
/// path for a reader migrating across a `value_version` bump. Each entry
/// carries the version its record was written at so the caller can pick
/// the right payload decoder. Versions not listed are skipped exactly as
/// [`Store::open`] would drop them as stale.
///
/// # Errors
///
/// Real I/O failures only; corruption and a missing directory are not
/// errors.
pub fn read_entries_with(
    dir: &Path,
    versions: &[u32],
) -> io::Result<Vec<(String, u32, Vec<u8>)>> {
    let read = match std::fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut ids: Vec<(u64, PathBuf)> = Vec::new();
    for entry in read {
        let entry = entry?;
        if let Some(id) = entry
            .file_name()
            .to_str()
            .and_then(segment::parse_file_name)
        {
            ids.push((id, entry.path()));
        }
    }
    ids.sort_unstable_by_key(|(id, _)| *id);

    let mut index: FxHashMap<String, RecordLocation> = FxHashMap::default();
    for (id, path) in &ids {
        let Some(outcome) = segment::scan(path, *id, versions)? else {
            continue; // not one of our segments
        };
        for (key, loc) in outcome.entries {
            index.insert(key, loc);
        }
    }

    let mut keys: Vec<String> = index.keys().cloned().collect();
    keys.sort_unstable();
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let loc = index[&key];
        // Re-verify at read time, like `Store::read_value`: the segment may
        // have been rotated away by the writer since the scan.
        let Ok(mut file) = File::open(dir.join(segment::file_name(loc.seg))) else {
            continue;
        };
        if file.seek(SeekFrom::Start(loc.offset)).is_err() {
            continue;
        }
        let mut frame = vec![0u8; loc.frame_len as usize];
        if file.read_exact(&mut frame).is_err() {
            continue;
        }
        let body_len = loc.frame_len as usize - RECORD_TRAILER_LEN;
        let stored = u32::from_le_bytes(frame[body_len..].try_into().expect("4 bytes"));
        if crc32(&frame[..body_len]) != stored {
            continue;
        }
        let Some(raw) = segment::decode_part(&frame[loc.value_range()], loc.val_compressed)
        else {
            continue;
        };
        out.push((key, loc.version, raw.into_owned()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "nshot-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config(dir: &Path) -> StoreConfig {
        StoreConfig {
            fsync: FsyncPolicy::Never,
            ..StoreConfig::new(dir)
        }
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut s = Store::open(small_config(&dir)).expect("open");
            s.put("alpha", b"payload a").expect("put");
            s.put("beta", b"payload b").expect("put");
            assert_eq!(s.get("alpha").as_deref(), Some(&b"payload a"[..]));
            assert_eq!(s.len(), 2);
        }
        let mut s = Store::open(small_config(&dir)).expect("reopen");
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().recovered_records, 2);
        assert_eq!(s.get("beta").as_deref(), Some(&b"payload b"[..]));
        assert_eq!(s.get("missing"), None);
        let st = s.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_keeps_latest_across_reopen() {
        let dir = temp_dir("overwrite");
        {
            let mut s = Store::open(small_config(&dir)).expect("open");
            s.put("k", b"v1").expect("put");
            s.put("k", b"v2").expect("put");
            assert_eq!(s.len(), 1);
            assert_eq!(s.get("k").as_deref(), Some(&b"v2"[..]));
        }
        let mut s = Store::open(small_config(&dir)).expect("reopen");
        assert_eq!(s.get("k").as_deref(), Some(&b"v2"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_entries_is_read_only_and_sees_latest() {
        let dir = temp_dir("readonly");
        {
            let mut s = Store::open(small_config(&dir)).expect("open");
            s.put("alpha", b"v1").expect("put");
            s.put("alpha", b"v2").expect("put");
            s.put("beta", b"payload b").expect("put");
            s.flush().expect("flush");

            // Concurrent scan while the writer still owns the directory.
            let scanned = read_entries(&dir, s.config.value_version).expect("scan");
            assert_eq!(
                scanned,
                vec![
                    ("alpha".to_string(), b"v2".to_vec()),
                    ("beta".to_string(), b"payload b".to_vec()),
                ]
            );
        }

        let before: Vec<_> = {
            let mut names: Vec<_> = std::fs::read_dir(&dir)
                .expect("read_dir")
                .map(|e| e.expect("entry").file_name())
                .collect();
            names.sort();
            names
        };
        let scanned = read_entries(&dir, StoreConfig::new(&dir).value_version).expect("scan");
        assert_eq!(scanned.len(), 2);
        let after: Vec<_> = {
            let mut names: Vec<_> = std::fs::read_dir(&dir)
                .expect("read_dir")
                .map(|e| e.expect("entry").file_name())
                .collect();
            names.sort();
            names
        };
        assert_eq!(before, after, "read_entries must not touch the directory");

        // A missing directory is an empty store, not an error.
        let none = read_entries(&dir.join("nope"), 1).expect("missing dir");
        assert!(none.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_seal_at_size_threshold() {
        let dir = temp_dir("seal");
        let config = StoreConfig {
            segment_max_bytes: 64, // every record overflows it
            ..small_config(&dir)
        };
        let mut s = Store::open(config).expect("open");
        for i in 0..4 {
            s.put(&format!("key-{i}"), &[b'x'; 48]).expect("put");
        }
        let report = s.report();
        assert!(report.segments >= 4, "sealing produced {} segments", report.segments);
        assert_eq!(report.records, 4);
        for i in 0..4 {
            assert!(s.get(&format!("key-{i}")).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_bounds_the_store_and_counts_evictions() {
        let dir = temp_dir("rotate");
        let config = StoreConfig {
            max_records: 4, // half-cap 2
            ..small_config(&dir)
        };
        let mut s = Store::open(config).expect("open");
        for i in 0..12 {
            s.put(&format!("key-{i:02}"), b"v").expect("put");
        }
        let st = s.stats();
        assert!(st.compactions > 0, "rotation never happened");
        assert!(st.evictions > 0, "nothing evicted");
        assert!(s.len() <= 4, "live records {} exceed cap", s.len());
        // The newest insert always survives.
        assert!(s.contains("key-11"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promotion_rescues_previous_generation_hits() {
        let dir = temp_dir("promote");
        {
            let mut s = Store::open(StoreConfig { max_records: 4, ..small_config(&dir) })
                .expect("open");
            s.put("hot", b"hot value").expect("put");
            s.put("cold", b"cold value").expect("put");
        }
        // Reopen: both records are now previous-generation.
        let mut s = Store::open(StoreConfig { max_records: 4, ..small_config(&dir) })
            .expect("reopen");
        assert_eq!(s.get("hot").as_deref(), Some(&b"hot value"[..]));
        assert_eq!(s.stats().promotions, 1, "prev-gen hit must promote");
        // Fill the current generation until the old one is deleted
        // (half-cap is 2: the promoted record plus one insert fill it, the
        // next insert rotates).
        for i in 0..2 {
            s.put(&format!("new-{i}"), b"x").expect("put");
        }
        assert_eq!(s.stats().compactions, 1);
        assert!(s.contains("hot"), "promoted record survives rotation");
        assert!(!s.contains("cold"), "unpromoted record ages out");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_value_version_is_recompiled_not_served() {
        let dir = temp_dir("version");
        {
            let mut s = Store::open(StoreConfig { value_version: 1, ..small_config(&dir) })
                .expect("open");
            s.put("k", b"old-format").expect("put");
        }
        let mut s = Store::open(StoreConfig { value_version: 2, ..small_config(&dir) })
            .expect("reopen");
        assert_eq!(s.get("k"), None, "stale-format record must not be served");
        assert_eq!(s.stats().stale_records, 1);
        s.put("k", b"new-format").expect("put");
        assert_eq!(s.get("k").as_deref(), Some(&b"new-format"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_versions_are_served_and_promoted_as_themselves() {
        let dir = temp_dir("legacy");
        {
            let mut s = Store::open(StoreConfig { value_version: 1, ..small_config(&dir) })
                .expect("open v1");
            s.put("json-record", b"{\"code\":200}").expect("put");
        }
        // A v2 store that still understands v1 payloads.
        let cfg = StoreConfig {
            value_version: 2,
            legacy_versions: vec![1],
            max_records: 4,
            ..small_config(&dir)
        };
        let mut s = Store::open(cfg.clone()).expect("reopen");
        assert_eq!(s.stats().recovered_records, 1);
        assert_eq!(s.stats().stale_records, 0);
        assert_eq!(s.version_of("json-record"), Some(1));
        // Byte-identical read-back across the version boundary…
        assert_eq!(s.get("json-record").as_deref(), Some(&b"{\"code\":200}"[..]));
        // …and the promotion that get() performed kept the record's own
        // payload version (the store reframes, it cannot transcode).
        assert_eq!(s.stats().promotions, 1);
        assert_eq!(s.version_of("json-record"), Some(1));
        assert_eq!(
            s.entries_versioned(),
            vec![("json-record".to_string(), 1, b"{\"code\":200}".to_vec())]
        );
        s.put("json-record", b"binary-now").expect("rewrite");
        assert_eq!(s.version_of("json-record"), Some(2));
        drop(s);
        let with_versions = read_entries_with(&dir, &[2, 1]).expect("scan");
        assert_eq!(
            with_versions,
            vec![("json-record".to_string(), 2, b"binary-now".to_vec())]
        );
        // A reader without the legacy list sees only current records.
        let mut s = Store::open(StoreConfig { legacy_versions: vec![], ..cfg }).expect("strict");
        assert_eq!(s.get("json-record").as_deref(), Some(&b"binary-now"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_are_sorted_and_complete() {
        let dir = temp_dir("entries");
        let mut s = Store::open(small_config(&dir)).expect("open");
        for key in ["zeta", "alpha", "mid"] {
            s.put(key, key.as_bytes()).expect("put");
        }
        let entries = s.entries();
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["alpha", "mid", "zeta"]);
        assert!(entries.iter().all(|(k, v)| k.as_bytes() == v.as_slice()));
        // Bulk scan is not a "hit" and must not promote/rewrite.
        assert_eq!(s.stats().hits, 0);
        assert_eq!(s.stats().promotions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_fsync_policies_round_trip() {
        for policy in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            let dir = temp_dir(policy.name());
            {
                let mut s = Store::open(StoreConfig {
                    fsync: policy,
                    ..StoreConfig::new(&dir)
                })
                .expect("open");
                s.put("k", b"v").expect("put");
                s.flush().expect("flush");
            }
            let mut s = Store::open(StoreConfig { fsync: policy, ..StoreConfig::new(&dir) })
                .expect("reopen");
            assert_eq!(s.get("k").as_deref(), Some(&b"v"[..]), "policy {}", policy.name());
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert!(FsyncPolicy::parse("nope").is_err());
        assert_eq!(FsyncPolicy::parse("batch"), Ok(FsyncPolicy::Batch));
    }

    #[test]
    fn read_only_open_leaves_no_empty_segment_behind() {
        let dir = temp_dir("litter");
        {
            let mut s = Store::open(small_config(&dir)).expect("open");
            s.put("k", b"v").expect("put");
        }
        {
            let _s = Store::open(small_config(&dir)).expect("warm open");
            // No writes at all.
        }
        let segments = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_str().is_some_and(|n| n.starts_with("seg-")))
            .count();
        assert_eq!(segments, 1, "read-only open littered a segment");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
