//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Same checksum the store's record framing uses, re-implemented here so
//! the wire crate stays at the bottom of the dependency graph (it must be
//! usable by both `nshot-store` and `nshot-server` without a cycle). The
//! table is computed in a `const fn`, so there is no startup cost.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// standard checksum zlib's `crc32()` computes).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }
}
