//! # nshot-wire — the versioned binary wire encoding
//!
//! One length-framed, CRC-checked, versioned binary encoding shared by
//! every layer that moves or persists N-SHOT artifacts — the server and
//! shard front (per-connection `format: binary` negotiation, responses
//! streamed record-by-record), the artifact store (compressed record
//! parts read back as CRC-checked slices) and the batch/bench tooling.
//! JSON-over-NDJSON stays available as the negotiated fallback for
//! debuggability; this crate is the fast path.
//!
//! The crate deliberately sits at the bottom of the dependency graph
//! (only `nshot-obs`, for the decode-error counter): `nshot-store`
//! borrows the LZSS codec for segment-level part compression, and
//! `nshot-server` builds its record payloads (requests, response heads,
//! fields, netlists, certificates) on the primitives here.
//!
//! * [`frame`] — the record frame: tag byte (+ compression bit), format
//!   version byte, varint length, payload, u32 CRC trailer.
//! * [`varint`] — LEB128 unsigned integers.
//! * [`lzss`] — the deterministic LZSS codec for large text payloads.
//! * [`crc32`] — CRC-32/ISO-HDLC, same checksum the store frames use.
//!
//! Every decoder in this crate returns a typed [`WireError`] — never a
//! panic, never an over-read, never an unbounded allocation (lengths are
//! capped before allocating). Decode failures are counted in the
//! process-global `nshot_wire_decode_errors_total` counter so a misbehaving
//! client population is visible in any metrics scrape.

pub mod crc32;
pub mod frame;
pub mod lzss;
pub mod varint;

pub use frame::{decode_frame, encode_frame, read_frame, Frame, MAX_FRAME_PAYLOAD};
pub use varint::{get_varint, put_varint};

use nshot_obs::{Counter, Registry};
use std::sync::{Arc, OnceLock};

/// The wire-format version stamped in every frame. Bump on any change to
/// the frame layout or record payload encodings — the golden wire
/// fixtures fail until it is bumped, and a peer speaking another version
/// gets a typed [`WireError::BadVersion`].
pub const WIRE_VERSION: u8 = 1;

/// Record tags (the low 7 bits of a frame's first byte).
pub mod tags {
    /// A request envelope (id + op + op-specific fields).
    pub const REQUEST: u8 = 1;
    /// The response head: id, code, status and the stamped-on call fields.
    pub const RESPONSE_HEAD: u8 = 2;
    /// One deterministic response body field (name + value).
    pub const FIELD: u8 = 3;
    /// End of a response record stream (carries the field count).
    pub const END: u8 = 4;
    /// A standalone specification artifact.
    pub const SPEC: u8 = 5;
    /// A standalone netlist artifact.
    pub const NETLIST: u8 = 6;
    /// A standalone certificate artifact.
    pub const CERT: u8 = 7;

    /// Is `tag` (compression bit already stripped) a known record tag?
    pub fn is_known(tag: u8) -> bool {
        (REQUEST..=CERT).contains(&tag)
    }
}

/// Everything that can go wrong decoding wire bytes. Every variant is a
/// *structured* refusal: decoders never panic, never over-read, and cap
/// allocations before trusting a length prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ends before the structure it declares.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame's format version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown record tag.
    BadTag(u8),
    /// The CRC trailer does not match the frame bytes.
    BadCrc {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC found in the trailer.
        found: u32,
    },
    /// A varint is non-canonical or overflows a `u64`.
    BadVarint,
    /// A declared length exceeds the hard cap.
    TooLong {
        /// The declared length.
        len: u64,
        /// The cap it violated.
        max: u64,
    },
    /// A payload is structurally invalid (bad value type byte, bad UTF-8,
    /// an LZSS stream that does not replay, …).
    Malformed(&'static str),
    /// A transport error while reading frames (not a decode failure).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated: needed {needed} bytes, have {have}")
            }
            WireError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            WireError::BadTag(t) => write!(f, "unknown record tag {t}"),
            WireError::BadCrc { expected, found } => {
                write!(f, "crc mismatch: computed {expected:#010x}, frame says {found:#010x}")
            }
            WireError::BadVarint => write!(f, "malformed varint"),
            WireError::TooLong { len, max } => {
                write!(f, "declared length {len} exceeds cap {max}")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Io(kind) => write!(f, "io error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Count this error in `nshot_wire_decode_errors_total` (transport
    /// [`WireError::Io`] failures are not decode errors and not counted)
    /// and pass it through — used at the public decode boundaries.
    pub fn noted(self) -> WireError {
        if !matches!(self, WireError::Io(_)) {
            decode_errors().inc();
        }
        self
    }
}

/// The process-global decode-error counter, registered on first use in
/// [`nshot_obs::Registry::global`] so it shows up in every metrics scrape.
pub fn decode_errors() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| Registry::global().counter("nshot_wire_decode_errors_total"))
}

/// Current value of `nshot_wire_decode_errors_total`.
pub fn decode_errors_total() -> u64 {
    decode_errors().get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable() {
        // The wire spec (DESIGN.md §4k) names these numbers; changing one
        // is a format change and must bump WIRE_VERSION.
        assert_eq!(WIRE_VERSION, 1);
        assert_eq!(tags::REQUEST, 1);
        assert_eq!(tags::RESPONSE_HEAD, 2);
        assert_eq!(tags::FIELD, 3);
        assert_eq!(tags::END, 4);
        assert_eq!(tags::SPEC, 5);
        assert_eq!(tags::NETLIST, 6);
        assert_eq!(tags::CERT, 7);
        assert!(!tags::is_known(0));
        assert!(!tags::is_known(8));
    }

    #[test]
    fn metric_is_registered_on_first_use() {
        let _ = decode_errors();
        let text = Registry::global().render_prometheus();
        assert!(text.contains("nshot_wire_decode_errors_total"));
    }
}
