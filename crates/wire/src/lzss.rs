//! A small deterministic LZSS codec for large text payloads.
//!
//! Netlists, certificates and specifications are line-oriented and highly
//! repetitive (`.names` headers, repeated product-term rows, signal names),
//! so even a classic byte-oriented LZSS with a 4 KiB window shrinks them
//! several-fold — without reaching outside the std-only workspace for a
//! real compression crate.
//!
//! Format: a stream of groups, each led by one control byte holding eight
//! flags (least-significant bit first). Flag 1 ⇒ one literal byte follows;
//! flag 0 ⇒ a two-byte match token: `offset_low8`, then
//! `offset_high4 << 4 | (len - MIN_MATCH)`. Offsets count back from the
//! current output position (1..=4096); match lengths span 3..=18 bytes.
//! The final control byte's unused flags are simply not consumed — the
//! decoder stops exactly at the declared raw length.
//!
//! The decoder is fully bounds-checked: a match reaching before the start
//! of the output, a truncated token, or trailing garbage yields a typed
//! [`WireError`], never a panic or an over-read. Compression is
//! deterministic (greedy longest-match over hash chains with a fixed probe
//! budget), so identical input bytes always produce identical compressed
//! bytes — the property the golden wire fixtures pin down.

use crate::WireError;

/// Window size: how far back a match may reach.
pub const WINDOW: usize = 4096;
/// Shortest match worth a 2-byte token.
const MIN_MATCH: usize = 3;
/// Longest match one token can encode.
const MAX_MATCH: usize = 18;
/// Hash-chain probe budget per position (compression effort knob).
const MAX_PROBES: usize = 64;

fn hash3(b: &[u8]) -> usize {
    let h = (u32::from(b[0]) << 16) ^ (u32::from(b[1]) << 8) ^ u32::from(b[2]);
    (h.wrapping_mul(0x9E37_79B1) >> 20) as usize & (WINDOW - 1)
}

/// Compress `raw`. The output does **not** record the raw length; the
/// caller frames it (every wire/store container stores the raw length as a
/// varint next to the compressed bytes).
pub fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 8);
    // head[h] = most recent position with hash h; prev[pos & mask] = the
    // position before it in the same chain. usize::MAX = chain end.
    let mut head = vec![usize::MAX; WINDOW];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut pos = 0;
    let mut flag_at = usize::MAX; // index of the current control byte
    let mut flag_bit = 8; // forces a fresh control byte on first token

    let mut push_flag = |out: &mut Vec<u8>, is_literal: bool| {
        if flag_bit == 8 {
            flag_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        if is_literal {
            out[flag_at] |= 1 << flag_bit;
        }
        flag_bit += 1;
    };

    while pos < raw.len() {
        let mut best_len = 0;
        let mut best_off = 0;
        if pos + MIN_MATCH <= raw.len() {
            let mut cand = head[hash3(&raw[pos..])];
            // A match token has 12 offset bits, so the farthest encodable
            // offset is WINDOW - 1: a distance of exactly WINDOW would wrap
            // to 0 and decode as "before start of output".
            let limit = pos.saturating_sub(WINDOW - 1);
            let max_len = MAX_MATCH.min(raw.len() - pos);
            for _ in 0..MAX_PROBES {
                let Some(c) = (cand != usize::MAX && cand >= limit).then_some(cand) else {
                    break;
                };
                let mut len = 0;
                while len < max_len && raw[c + len] == raw[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_off = pos - c;
                    if len == max_len {
                        break;
                    }
                }
                cand = prev[c & (WINDOW - 1)];
            }
        }

        let insert_span;
        if best_len >= MIN_MATCH {
            push_flag(&mut out, false);
            out.push((best_off & 0xff) as u8);
            out.push((((best_off >> 8) & 0x0f) << 4) as u8 | (best_len - MIN_MATCH) as u8);
            insert_span = best_len;
        } else {
            push_flag(&mut out, true);
            out.push(raw[pos]);
            insert_span = 1;
        }
        // Index every position the token covered so later matches can
        // start inside it.
        for p in pos..pos + insert_span {
            if p + MIN_MATCH <= raw.len() {
                let h = hash3(&raw[p..]);
                prev[p & (WINDOW - 1)] = head[h];
                head[h] = p;
            }
        }
        pos += insert_span;
    }
    out
}

/// Decompress exactly `raw_len` bytes from `comp`.
///
/// # Errors
///
/// [`WireError::Truncated`] when the stream ends before `raw_len` bytes
/// are produced, [`WireError::Malformed`] for a match reaching before the
/// start of the output or a stream longer than its declared content.
pub fn decompress(comp: &[u8], raw_len: usize) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while out.len() < raw_len {
        let Some(&flags) = comp.get(i) else {
            return Err(WireError::Truncated {
                needed: i + 1,
                have: comp.len(),
            });
        };
        i += 1;
        for bit in 0..8 {
            if out.len() == raw_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                let Some(&b) = comp.get(i) else {
                    return Err(WireError::Truncated {
                        needed: i + 1,
                        have: comp.len(),
                    });
                };
                i += 1;
                out.push(b);
            } else {
                let (Some(&lo), Some(&hi)) = (comp.get(i), comp.get(i + 1)) else {
                    return Err(WireError::Truncated {
                        needed: i + 2,
                        have: comp.len(),
                    });
                };
                i += 2;
                let off = usize::from(lo) | (usize::from(hi >> 4) << 8);
                let len = usize::from(hi & 0x0f) + MIN_MATCH;
                if off == 0 || off > out.len() {
                    return Err(WireError::Malformed("lzss match before start of output"));
                }
                if out.len() + len > raw_len {
                    return Err(WireError::Malformed("lzss match past declared length"));
                }
                let start = out.len() - off;
                // Byte-by-byte: matches may overlap their own output (the
                // classic run-length trick), so no memcpy of the whole span.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if i != comp.len() {
        return Err(WireError::Malformed("lzss trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) {
        let comp = compress(raw);
        let back = decompress(&comp, raw.len()).expect("decompress");
        assert_eq!(back, raw);
    }

    #[test]
    fn round_trips_representative_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abcabcabcabcabcabc");
        roundtrip(&vec![0u8; 10_000]);
        roundtrip(&(0u32..5000).flat_map(|i| i.to_le_bytes()).collect::<Vec<_>>());
        let blif_like = ".names a b c\n110 1\n101 1\n.names c d e\n110 1\n101 1\n"
            .repeat(200)
            .into_bytes();
        roundtrip(&blif_like);
    }

    #[test]
    fn repetitive_text_shrinks_severalfold() {
        let raw = ".names req ack out\n110 1\n101 1\n011 1\n".repeat(300).into_bytes();
        let comp = compress(&raw);
        assert!(
            comp.len() * 3 < raw.len(),
            "expected ≥3x on repetitive text, got {} -> {}",
            raw.len(),
            comp.len()
        );
    }

    #[test]
    fn compression_is_deterministic() {
        let raw = b"determinism determinism determinism".repeat(50);
        assert_eq!(compress(&raw), compress(&raw));
    }

    #[test]
    fn truncated_streams_are_typed_errors() {
        let raw = b"hello hello hello hello hello".repeat(20);
        let comp = compress(&raw);
        for cut in 0..comp.len() {
            match decompress(&comp[..cut], raw.len()) {
                Err(WireError::Truncated { .. } | WireError::Malformed(_)) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn matches_cannot_read_before_the_output() {
        // Control byte: first flag 0 (match), offset 5 with nothing written.
        let bogus = [0b0000_0000u8, 5, 0x00];
        assert!(matches!(
            decompress(&bogus, 8),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn match_at_window_edge_roundtrips() {
        // A repeat at distance exactly WINDOW used to encode as offset 0
        // (the 12-bit field wraps), which the decoder rejects. The marker
        // bytes stay below 0x80 and the filler at or above it, so the only
        // cross-filler match candidate is the one at distance WINDOW.
        let marker = b"marker!!";
        let mut raw = marker.to_vec();
        raw.extend((0..WINDOW - marker.len()).map(|i| (i % 120 + 128) as u8));
        raw.extend_from_slice(marker);
        assert_eq!(raw.len(), WINDOW + marker.len());
        roundtrip(&raw);
    }

    #[test]
    fn overlapping_matches_replay_runs() {
        // "aaaaaaaa…" exercises the off=1 overlap path.
        let raw = vec![b'a'; 1000];
        roundtrip(&raw);
        let comp = compress(&raw);
        assert!(comp.len() < 200, "runs must collapse, got {}", comp.len());
    }
}
