//! Length-framed, versioned, CRC-checked record frames.
//!
//! One frame on the wire:
//!
//! ```text
//! +------------+-----------+-------------------+------------------+-----------+
//! | tag u8     | version   | stored_len varint | stored bytes     | crc32 LE  |
//! | (bit7 =    | u8 (= 1)  | (LEB128)          | (raw, or varint  | over all  |
//! |  compressed)|          |                   |  raw_len + lzss) | prior     |
//! +------------+-----------+-------------------+------------------+-----------+
//! ```
//!
//! The CRC covers every byte before it (tag, version, length varint and
//! the stored payload), so a flipped bit anywhere in the frame is caught.
//! Compression is per-frame and transparent: [`encode_frame`] compresses
//! large payloads when it saves bytes (setting the tag's high bit) and
//! [`decode_frame`]/[`read_frame`] hand back the raw payload either way.
//! Because the compressor is deterministic, decode→re-encode reproduces
//! the original frame bytes exactly — the property the shard front's relay
//! path and the golden fixtures rely on.

use crate::varint::{get_varint, put_varint};
use crate::{crc32::crc32, lzss, tags, WireError, WIRE_VERSION};
use std::io::BufRead;

/// Tag bit marking a compressed payload.
pub const COMPRESSED: u8 = 0x80;

/// Hard cap on one frame's stored payload: a hostile length prefix must
/// not be able to commit the decoder to a giant allocation.
pub const MAX_FRAME_PAYLOAD: u64 = 64 * 1024 * 1024;

/// Payloads below this size are never worth a compression attempt.
const COMPRESS_MIN: usize = 64;

/// One decoded frame: the record tag (compression bit stripped) and the
/// raw (decompressed) payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Record tag (see [`crate::tags`]).
    pub tag: u8,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Re-encode this frame. Deterministic: equal frames encode to equal
    /// bytes, so decode → encode is the identity on valid frames.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(self.tag, &self.payload)
    }
}

/// Encode one frame, compressing the payload when that saves bytes.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    debug_assert!(tags::is_known(tag), "unknown record tag {tag}");
    let mut stored_tag = tag;
    let mut stored: Vec<u8>;
    if payload.len() >= COMPRESS_MIN {
        let comp = lzss::compress(payload);
        let mut framed = Vec::with_capacity(comp.len() + 4);
        put_varint(&mut framed, payload.len() as u64);
        framed.extend_from_slice(&comp);
        if framed.len() < payload.len() {
            stored_tag |= COMPRESSED;
            stored = framed;
        } else {
            stored = payload.to_vec();
        }
    } else {
        stored = payload.to_vec();
    }

    let mut out = Vec::with_capacity(stored.len() + 16);
    out.push(stored_tag);
    out.push(WIRE_VERSION);
    put_varint(&mut out, stored.len() as u64);
    out.append(&mut stored);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validate the header fields and return `(tag_byte, stored_len,
/// header_len)`. Shared by the buffer and reader decode paths.
fn decode_header(buf: &[u8]) -> Result<(u8, usize, usize), WireError> {
    let [tag_byte, version, ..] = *buf else {
        return Err(WireError::Truncated {
            needed: 2,
            have: buf.len(),
        });
    };
    if !tags::is_known(tag_byte & !COMPRESSED) {
        return Err(WireError::BadTag(tag_byte & !COMPRESSED));
    }
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let (stored_len, var_len) = get_varint(&buf[2..])?;
    if stored_len > MAX_FRAME_PAYLOAD {
        return Err(WireError::TooLong {
            len: stored_len,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    Ok((tag_byte, stored_len as usize, 2 + var_len))
}

/// Check the trailer CRC and unpack the stored payload of a whole frame
/// occupying `buf[..header_len + stored_len + 4]`.
fn finish_frame(
    buf: &[u8],
    tag_byte: u8,
    stored_len: usize,
    header_len: usize,
) -> Result<Frame, WireError> {
    let body_end = header_len + stored_len;
    let expected = crc32(&buf[..body_end]);
    let found = u32::from_le_bytes(
        buf[body_end..body_end + 4]
            .try_into()
            .expect("4 trailer bytes"),
    );
    if expected != found {
        return Err(WireError::BadCrc { expected, found });
    }
    let stored = &buf[header_len..body_end];
    let payload = if tag_byte & COMPRESSED != 0 {
        let (raw_len, used) = get_varint(stored)?;
        if raw_len > MAX_FRAME_PAYLOAD {
            return Err(WireError::TooLong {
                len: raw_len,
                max: MAX_FRAME_PAYLOAD,
            });
        }
        lzss::decompress(&stored[used..], raw_len as usize)?
    } else {
        stored.to_vec()
    };
    Ok(Frame {
        tag: tag_byte & !COMPRESSED,
        payload,
    })
}

/// Decode one frame from the front of `buf`; returns the frame and the
/// number of bytes consumed. Never reads past the returned length.
///
/// # Errors
///
/// Every malformation is a typed [`WireError`] (and counted in
/// `nshot_wire_decode_errors_total`); the decoder never panics and never
/// reads beyond `buf`.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    decode_frame_inner(buf).map_err(WireError::noted)
}

fn decode_frame_inner(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    let (tag_byte, stored_len, header_len) = decode_header(buf)?;
    let total = header_len + stored_len + 4;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    let frame = finish_frame(buf, tag_byte, stored_len, header_len)?;
    Ok((frame, total))
}

/// Read one frame from a buffered reader. `Ok(None)` is a clean EOF at a
/// frame boundary; EOF anywhere inside a frame is [`WireError::Truncated`].
///
/// # Errors
///
/// Typed [`WireError`] for malformed frames (counted in
/// `nshot_wire_decode_errors_total`), [`WireError::Io`] for transport
/// failures.
pub fn read_frame<R: BufRead>(reader: &mut R) -> Result<Option<Frame>, WireError> {
    read_frame_inner(reader).map_err(WireError::noted)
}

fn read_frame_inner<R: BufRead>(reader: &mut R) -> Result<Option<Frame>, WireError> {
    // Tag byte: the only place EOF is clean.
    let mut buf = vec![0u8; 1];
    match reader.read(&mut buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(WireError::Io(e.kind())),
    }
    // Version byte, then the length varint one byte at a time (at most 10).
    read_byte_into(reader, &mut buf)?;
    loop {
        let b = read_byte_into(reader, &mut buf)?;
        if b & 0x80 == 0 {
            break;
        }
        if buf.len() > 2 + crate::varint::MAX_VARINT_LEN {
            return Err(WireError::BadVarint);
        }
    }
    let (tag_byte, stored_len, header_len) = decode_header(&buf)?;
    debug_assert_eq!(header_len, buf.len());
    buf.resize(header_len + stored_len + 4, 0);
    match reader.read_exact(&mut buf[header_len..]) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(WireError::Truncated {
                needed: header_len + stored_len + 4,
                have: header_len,
            })
        }
        Err(e) => return Err(WireError::Io(e.kind())),
    }
    finish_frame(&buf, tag_byte, stored_len, header_len).map(Some)
}

fn read_byte_into<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> Result<u8, WireError> {
    let mut byte = [0u8; 1];
    match reader.read_exact(&mut byte) {
        Ok(()) => {
            buf.push(byte[0]);
            Ok(byte[0])
        }
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(WireError::Truncated {
            needed: buf.len() + 1,
            have: buf.len(),
        }),
        Err(e) => Err(WireError::Io(e.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags;

    #[test]
    fn round_trips_small_and_large_payloads() {
        for payload in [
            Vec::new(),
            b"x".to_vec(),
            b"hello frame".to_vec(),
            ".names a b c\n11 1\n".repeat(500).into_bytes(),
        ] {
            let bytes = encode_frame(tags::FIELD, &payload);
            let (frame, used) = decode_frame(&bytes).expect("decode");
            assert_eq!(used, bytes.len());
            assert_eq!(frame.tag, tags::FIELD);
            assert_eq!(frame.payload, payload);
            // decode → encode is the identity.
            assert_eq!(frame.encode(), bytes);
        }
    }

    #[test]
    fn large_repetitive_payloads_are_stored_compressed() {
        let payload = ".names a b c\n11 1\n".repeat(500).into_bytes();
        let bytes = encode_frame(tags::FIELD, &payload);
        assert!(bytes[0] & COMPRESSED != 0, "payload should compress");
        assert!(bytes.len() * 2 < payload.len());
    }

    #[test]
    fn reader_path_matches_buffer_path() {
        let a = encode_frame(tags::REQUEST, b"abc");
        let b = encode_frame(tags::END, &[]);
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let mut r = std::io::Cursor::new(stream);
        let fa = read_frame(&mut r).expect("read a").expect("some");
        let fb = read_frame(&mut r).expect("read b").expect("some");
        assert_eq!(fa.tag, tags::REQUEST);
        assert_eq!(fa.payload, b"abc");
        assert_eq!(fb.tag, tags::END);
        assert!(read_frame(&mut r).expect("eof").is_none(), "clean EOF");
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode_frame(tags::FIELD, b"truncate me truncate me truncate me");
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("cut {cut}: {other:?}"),
            }
            // The reader path must agree (EOF mid-frame is truncation).
            if cut > 0 {
                let mut r = std::io::Cursor::new(bytes[..cut].to_vec());
                match read_frame(&mut r) {
                    Err(WireError::Truncated { .. }) => {}
                    other => panic!("reader cut {cut}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn flipped_bytes_are_caught() {
        let bytes = encode_frame(tags::RESPONSE_HEAD, b"payload payload payload");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert!(
                decode_frame(&bad).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn bad_tag_version_and_length_are_typed() {
        let good = encode_frame(tags::END, &[]);
        let mut bad_tag = good.clone();
        bad_tag[0] = 0x7f;
        assert!(matches!(decode_frame(&bad_tag), Err(WireError::BadTag(0x7f))));
        let mut bad_ver = good.clone();
        bad_ver[1] = 9;
        assert!(matches!(
            decode_frame(&bad_ver),
            Err(WireError::BadVersion(9))
        ));
        // A length claiming more than the cap must be rejected before any
        // allocation of that size.
        let mut huge = vec![tags::FIELD, WIRE_VERSION];
        crate::varint::put_varint(&mut huge, MAX_FRAME_PAYLOAD + 1);
        huge.extend_from_slice(&[0; 8]);
        assert!(matches!(decode_frame(&huge), Err(WireError::TooLong { .. })));
    }

    #[test]
    fn decode_errors_are_counted() {
        let before = crate::decode_errors_total();
        let _ = decode_frame(&[0x7f, WIRE_VERSION, 0, 0, 0, 0, 0]);
        assert!(crate::decode_errors_total() > before);
    }
}
