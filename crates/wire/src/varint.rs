//! LEB128 variable-length unsigned integers.
//!
//! Seven payload bits per byte, least-significant group first, high bit =
//! continuation. A `u64` takes at most 10 bytes; decoding rejects anything
//! longer (a value that does not fit, or a non-canonical run of
//! continuation bytes) with a typed error instead of wrapping silently.

use crate::WireError;

/// Maximum encoded length of a `u64` (⌈64 / 7⌉).
pub const MAX_VARINT_LEN: usize = 10;

/// Append the LEB128 encoding of `value` to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 integer from the front of `buf`; returns the value
/// and the number of bytes consumed.
///
/// # Errors
///
/// [`WireError::Truncated`] when the buffer ends mid-varint and
/// [`WireError::BadVarint`] when the encoding overflows a `u64`.
pub fn get_varint(buf: &[u8]) -> Result<(u64, usize), WireError> {
    let mut value: u64 = 0;
    for (i, &byte) in buf.iter().take(MAX_VARINT_LEN).enumerate() {
        let group = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the single remaining bit.
        if i == MAX_VARINT_LEN - 1 && byte > 0x01 {
            return Err(WireError::BadVarint);
        }
        value |= group << (7 * i);
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    if buf.len() >= MAX_VARINT_LEN {
        Err(WireError::BadVarint)
    } else {
        Err(WireError::Truncated {
            needed: buf.len() + 1,
            have: buf.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_representative_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_LEN);
            let (back, used) = get_varint(&buf).expect("decode");
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn single_byte_boundary() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 127);
        assert_eq!(buf, [0x7f]);
        buf.clear();
        put_varint(&mut buf, 128);
        assert_eq!(buf, [0x80, 0x01]);
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(matches!(
                get_varint(&buf[..cut]),
                Err(WireError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // Eleven continuation bytes can never be a canonical u64.
        let buf = [0x80u8; 11];
        assert!(matches!(get_varint(&buf), Err(WireError::BadVarint)));
        // A 10-byte run whose final byte overflows bit 64.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        assert!(matches!(get_varint(&overflow), Err(WireError::BadVarint)));
    }
}
