//! End-to-end loopback tests: a real `Server` on an ephemeral port, real
//! TCP clients, and byte-for-byte comparison against direct library calls.

use nshot_core::{synthesize, SynthesisOptions};
use nshot_server::{json, Json, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Small/medium circuits from the Table 2 suite (the full 25-circuit sweep
/// is the loadgen harness's job; the e2e test favours debug-build speed).
const CIRCUITS: &[&str] = &["chu133", "chu172", "full", "hazard", "qr42", "vbe5b"];

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { reader, writer }
    }

    /// Send one raw line, read one response line.
    fn roundtrip_raw(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        assert!(response.ends_with('\n'), "truncated response");
        response.trim_end().to_owned()
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        let raw = self.roundtrip_raw(line);
        json::parse(&raw).unwrap_or_else(|e| panic!("bad response json ({e}): {raw}"))
    }
}

fn spec_text(circuit: &str) -> String {
    nshot_benchmarks::by_name(circuit)
        .expect("in suite")
        .build()
        .to_text()
}

fn synth_line(id: u64, spec: &str) -> String {
    let obj = Json::Obj(vec![
        ("id".into(), Json::Num(id as f64)),
        ("op".into(), Json::Str("synth".into())),
        ("spec".into(), Json::Str(spec.into())),
    ]);
    obj.to_string()
}

/// The deterministic part of a response line (everything between the id
/// field and the `cached` stamp).
fn deterministic_part(raw: &str) -> &str {
    let start = raw.find(",\"code\":").expect("code field");
    let end = raw.rfind(",\"cached\":").expect("cached field");
    &raw[start..end]
}

#[test]
fn concurrent_clients_get_byte_identical_responses() {
    let server = Server::bind(ServerConfig {
        queue_cap: 64,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    let specs: Vec<(String, String)> = CIRCUITS
        .iter()
        .map(|c| (c.to_string(), spec_text(c)))
        .collect();

    // Expected responses via direct library calls.
    let expected: Vec<(String, u32, String)> = specs
        .iter()
        .map(|(name, spec)| {
            let sg = nshot_sg::parse_sg(spec).expect("spec roundtrip");
            let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesize");
            (name.clone(), imp.area, imp.netlist.to_blif())
        })
        .collect();

    // 8 concurrent clients, each replaying all circuits (rotated start so
    // the interleavings differ), twice. Responses must match the direct
    // call byte-for-byte, and the deterministic prefix must be identical
    // across every client and pass.
    let n_clients = 8;
    let all_parts: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_clients)
            .map(|ci| {
                let specs = &specs;
                let expected = &expected;
                s.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut parts = vec![String::new(); specs.len()];
                    for pass in 0..2 {
                        for k in 0..specs.len() {
                            let i = (k + ci) % specs.len();
                            let raw =
                                client.roundtrip_raw(&synth_line(i as u64, &specs[i].1));
                            let v = json::parse(&raw).expect("response json");
                            assert_eq!(
                                v.get("code").and_then(Json::as_u64),
                                Some(200),
                                "client {ci} pass {pass} circuit {}: {raw}",
                                specs[i].0
                            );
                            assert_eq!(v.get("id").and_then(Json::as_u64), Some(i as u64));
                            assert_eq!(
                                v.get("area").and_then(Json::as_f64),
                                Some(f64::from(expected[i].1)),
                                "area mismatch on {}",
                                specs[i].0
                            );
                            assert_eq!(
                                v.get("blif").and_then(Json::as_str),
                                Some(expected[i].2.as_str()),
                                "netlist not byte-identical on {}",
                                specs[i].0
                            );
                            let det = deterministic_part(&raw).to_owned();
                            if pass == 0 {
                                parts[i] = det;
                            } else {
                                assert_eq!(parts[i], det, "pass divergence on {}", specs[i].0);
                            }
                        }
                    }
                    parts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });
    for parts in &all_parts[1..] {
        assert_eq!(parts, &all_parts[0], "cross-client divergence");
    }

    // After 8 clients × 2 passes of the same 6 requests, the response
    // cache must have answered most of them.
    let mut client = Client::connect(addr);
    let stats = client.roundtrip(r#"{"id":99,"op":"stats"}"#);
    let cache = stats.get("response_cache").expect("cache stats");
    let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
    let misses = cache.get("misses").and_then(Json::as_u64).unwrap();
    assert!(hits > 0, "no cache hits after a repeat pass");
    assert_eq!(
        hits + misses,
        (n_clients * specs.len() * 2) as u64,
        "every synth request consults the cache"
    );
    let latency = stats.get("latency_us").expect("latency stats");
    assert!(latency.get("p50").and_then(Json::as_u64).unwrap() > 0);
    assert!(
        latency.get("p99").and_then(Json::as_u64).unwrap()
            >= latency.get("p50").and_then(Json::as_u64).unwrap()
    );

    server.shutdown();
    server.wait();
}

#[test]
fn monte_carlo_counts_match_direct_call() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr());

    let spec = spec_text("full");
    let line = Json::Obj(vec![
        ("op".into(), Json::Str("synth".into())),
        ("spec".into(), Json::Str(spec.clone())),
        ("trials".into(), Json::Num(10.0)),
        ("format".into(), Json::Str("none".into())),
    ])
    .to_string();
    let v = client.roundtrip(&line);
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(200));

    let sg = nshot_sg::parse_sg(&spec).unwrap();
    let imp = synthesize(&sg, &SynthesisOptions::default()).unwrap();
    let direct = nshot_sim::monte_carlo(
        &sg,
        &imp,
        &nshot_sim::ConformanceConfig::default(),
        10,
    );
    assert_eq!(
        v.get("clean_trials").and_then(Json::as_u64),
        Some(direct.clean_trials as u64)
    );
    assert_eq!(
        v.get("total_transitions").and_then(Json::as_u64),
        Some(direct.total_transitions as u64)
    );
    assert_eq!(v.get("hazard_free").and_then(Json::as_bool), Some(true));

    server.shutdown();
    server.wait();
}

#[test]
fn verify_op_proves_circuits_and_caches() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr());

    let spec = spec_text("chu133");
    let line = Json::Obj(vec![
        ("id".into(), Json::Num(1.0)),
        ("op".into(), Json::Str("verify".into())),
        ("spec".into(), Json::Str(spec.clone())),
    ])
    .to_string();

    let first_raw = client.roundtrip_raw(&line);
    let first = json::parse(&first_raw).expect("response json");
    assert_eq!(first.get("code").and_then(Json::as_u64), Some(200), "{first_raw}");
    assert_eq!(first.get("proved").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("method").and_then(Json::as_str), Some("proof"));
    assert_eq!(first.get("hazard_free").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    assert!(first.get("explored_states").and_then(Json::as_u64).unwrap() > 0);

    // The wire result must agree with a direct library call.
    let sg = nshot_sg::parse_sg(&spec).unwrap();
    let imp = synthesize(&sg, &SynthesisOptions::default()).unwrap();
    let verdict = nshot_mc::check(&sg, &imp.netlist, &nshot_mc::McConfig::default()).unwrap();
    let cert = verdict.certificate().expect("proved");
    assert_eq!(
        first.get("explored_states").and_then(Json::as_u64),
        Some(cert.stats.states)
    );
    assert_eq!(
        first.get("edges").and_then(Json::as_u64),
        Some(cert.stats.edges)
    );

    // A repeat is a cache hit with an identical deterministic prefix.
    let second_raw = client.roundtrip_raw(&line);
    let second = json::parse(&second_raw).expect("response json");
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(deterministic_part(&first_raw), deterministic_part(&second_raw));

    // A tiny budget falls back to sampling — and is cached under a
    // different key, not served from the proof's entry.
    let tiny = Json::Obj(vec![
        ("id".into(), Json::Num(2.0)),
        ("op".into(), Json::Str("verify".into())),
        ("spec".into(), Json::Str(spec.clone())),
        ("max_states".into(), Json::Num(2.0)),
    ])
    .to_string();
    let v = client.roundtrip(&tiny);
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(200));
    assert_eq!(v.get("proved").and_then(Json::as_bool), Some(false));
    assert_eq!(
        v.get("method").and_then(Json::as_str),
        Some("monte_carlo_fallback")
    );
    assert_eq!(v.get("hazard_free").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("cached").and_then(Json::as_bool), Some(false));

    // Counters saw three verify requests.
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("verify_requests").and_then(Json::as_u64), Some(3));
    assert_eq!(stats.get("synth_requests").and_then(Json::as_u64), Some(0));

    server.shutdown();
    server.wait();
}

#[test]
fn verify_op_rejects_malformed_specs_with_typed_errors() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr());

    // Malformed .g STG text (duplicate transition): 400 from the parser,
    // never a panic or dropped connection.
    let dup = ".model bad\n.inputs a\n.outputs y\n.graph\na+ y+\na+ y+\ny+ a-\n.marking { <y+,a-> }\n.end\n";
    let line = Json::Obj(vec![
        ("id".into(), Json::Num(1.0)),
        ("op".into(), Json::Str("verify".into())),
        ("spec".into(), Json::Str(dup.into())),
    ])
    .to_string();
    let v = client.roundtrip(&line);
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(400), "{v:?}");
    assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));

    // Bad request shape: max_states out of range.
    let v = client.roundtrip(r#"{"id":2,"op":"verify","spec":"x","max_states":0}"#);
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(400));

    // The connection is still healthy.
    let v = client.roundtrip(r#"{"id":3,"op":"ping"}"#);
    assert_eq!(v.get("pong").and_then(Json::as_bool), Some(true));

    server.shutdown();
    server.wait();
}

#[test]
fn protocol_errors_are_answered_not_fatal() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr());

    // Bad JSON, unknown op, missing spec, bad spec — all structured 4xx,
    // and the connection keeps working afterwards.
    let v = client.roundtrip("this is not json");
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(400));
    assert_eq!(v.get("id"), Some(&Json::Null));

    let v = client.roundtrip(r#"{"id":1,"op":"transmogrify"}"#);
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(400));
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(1));

    let v = client.roundtrip(r#"{"id":2,"op":"synth","spec":".inputs r\n"}"#);
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(400));
    assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));

    // Raw non-UTF-8 bytes on the wire.
    client.writer.write_all(b"\xff\xfe{\"op\":\"ping\"}\n").unwrap();
    client.writer.flush().unwrap();
    let mut raw = String::new();
    client.reader.read_line(&mut raw).unwrap();
    let v = json::parse(raw.trim_end()).expect("utf-8 error response");
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(400));

    // Still alive.
    let v = client.roundtrip(r#"{"id":3,"op":"ping"}"#);
    assert_eq!(v.get("pong").and_then(Json::as_bool), Some(true));

    server.shutdown();
    server.wait();
}

#[test]
fn backpressure_rejects_with_queue_depth() {
    // One worker, one queue slot: while the worker chews on a heavy
    // circuit, at most one job queues and the rest must bounce with 429.
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_cap: 1,
        cache_cap: 0, // every request must reach the queue
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    let heavy = spec_text("vbe10b"); // 256 states
    let mut rejected = 0;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let heavy = &heavy;
                s.spawn(move || {
                    let mut client = Client::connect(addr);
                    let v = client.roundtrip(&synth_line(i, heavy));
                    v.get("code").and_then(Json::as_u64).unwrap()
                })
            })
            .collect();
        for h in handles {
            let code = h.join().expect("client");
            assert!(code == 200 || code == 429, "unexpected code {code}");
            if code == 429 {
                rejected += 1;
            }
        }
    });
    assert!(rejected > 0, "six parallel jobs through a 1-slot queue must bounce");

    let mut client = Client::connect(addr);
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("rejects").and_then(Json::as_u64),
        Some(rejected),
        "reject counter matches observed 429s"
    );
    let queue = stats.get("queue").expect("queue stats");
    assert_eq!(queue.get("capacity").and_then(Json::as_u64), Some(1));
    assert!(queue.get("high_water").and_then(Json::as_u64).unwrap() >= 1);

    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_request_drains_cleanly() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    // Launch a few jobs, then — while they are in flight — request
    // shutdown from another connection. The shutdown reply must only
    // arrive after the drain, and the jobs must all complete normally.
    let spec = spec_text("chu150");
    let results = std::thread::scope(|s| {
        let jobs: Vec<_> = (0..4)
            .map(|i| {
                let spec = &spec;
                s.spawn(move || {
                    let mut client = Client::connect(addr);
                    let v = client.roundtrip(&synth_line(i, spec));
                    v.get("code").and_then(Json::as_u64).unwrap()
                })
            })
            .collect();
        // Give the jobs a moment to be admitted, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let shutdown = s.spawn(move || {
            let mut client = Client::connect(addr);
            client.roundtrip(r#"{"id":"ctl","op":"shutdown"}"#)
        });
        let codes: Vec<u64> = jobs.into_iter().map(|h| h.join().unwrap()).collect();
        let ack = shutdown.join().unwrap();
        (codes, ack)
    });
    let (codes, ack) = results;
    for code in codes {
        assert!(
            code == 200 || code == 503,
            "in-flight jobs either complete or are cleanly refused, got {code}"
        );
    }
    assert_eq!(ack.get("code").and_then(Json::as_u64), Some(200));
    assert_eq!(ack.get("drained").and_then(Json::as_bool), Some(true));
    assert_eq!(ack.get("id").and_then(Json::as_str), Some("ctl"));

    // The server must now wind down on its own: workers exit, accept loop
    // exits, wait() returns.
    server.wait();

    // And new connections are refused (or immediately dead).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            let _ = w.write_all(b"{\"op\":\"ping\"}\n");
            let mut line = String::new();
            let n = reader.read_line(&mut line).unwrap_or(0);
            assert_eq!(n, 0, "post-shutdown connection must not be served");
        }
    }
}
