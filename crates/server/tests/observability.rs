//! Observability end-to-end: the `metrics` op over real TCP, per-response
//! stage timings vs wall-clock, and netlist byte-determinism with the
//! NDJSON trace sink on vs off.

use nshot_core::{synthesize, SynthesisOptions};
use nshot_server::{json, Json, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { reader, writer }
    }

    fn roundtrip_raw(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        assert!(response.ends_with('\n'), "truncated response");
        response.trim_end().to_owned()
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        let raw = self.roundtrip_raw(line);
        json::parse(&raw).unwrap_or_else(|e| panic!("bad response json ({e}): {raw}"))
    }
}

fn spec_text(circuit: &str) -> String {
    nshot_benchmarks::by_name(circuit)
        .expect("in suite")
        .build()
        .to_text()
}

fn synth_line(id: u64, spec: &str) -> String {
    Json::Obj(vec![
        ("id".into(), Json::Num(id as f64)),
        ("op".into(), Json::Str("synth".into())),
        ("spec".into(), Json::Str(spec.into())),
        ("format".into(), Json::Str("none".into())),
    ])
    .to_string()
}

/// The `metrics` op returns a Prometheus text exposition in which every
/// non-comment line parses as `name[{labels}] value`, the server counters
/// reflect the traffic, and the pipeline-stage histograms cover every
/// stage after one uncached synthesis.
#[test]
fn metrics_exposition_parses_and_covers_stages() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr());

    let v = client.roundtrip(&synth_line(1, &spec_text("hazard")));
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(200));

    let m = client.roundtrip(r#"{"id":2,"op":"metrics"}"#);
    assert_eq!(m.get("code").and_then(Json::as_u64), Some(200));
    let expo = m
        .get("exposition")
        .and_then(Json::as_str)
        .expect("exposition field");

    // Every line is a comment or `series value` with a numeric value.
    for line in expo.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("unparseable exposition line: {line}")
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample on line: {line}"
        );
        assert!(
            series.chars().next().is_some_and(|c| c.is_ascii_alphabetic()),
            "bad series name on line: {line}"
        );
    }

    // Server-side counters saw the synth request.
    assert!(expo.contains("# TYPE nshot_requests_total counter"));
    assert!(expo.contains("nshot_synth_requests_total 1"));
    assert!(expo.contains("nshot_request_duration_us_count"));

    // The global registry rides along: stage histograms for all seven
    // pipeline stages (the synthesis above exercised each of them), and
    // the espresso cache counters.
    for stage in nshot_obs::PIPELINE_STAGES {
        let series = format!("nshot_stage_duration_us_count{{stage=\"{}\"}}", stage.name());
        assert!(expo.contains(&series), "missing stage series {series}");
    }
    assert!(expo.contains("nshot_espresso_cache_hits_total"));
    assert!(expo.contains("nshot_espresso_cache_entries"));

    server.shutdown();
    let report = server.wait();
    assert!(report.served >= 2);
    assert!(report.metrics.contains("nshot_requests_total"));
}

/// Each uncached synth response carries a per-stage `timing` map whose
/// total is bounded by the end-to-end `service_us` (with one pipeline
/// thread the stages are strictly sequential), and a monotonically
/// increasing trace id. Cache hits skip the pipeline and carry no timing.
#[test]
fn per_stage_timings_sum_within_service_time() {
    // One pipeline thread: stage spans cannot overlap, so their sum is a
    // lower bound of the request's wall-clock.
    let _pin = nshot_par::ThreadGuard::pin(1);
    let server = Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.local_addr());

    let line = synth_line(7, &spec_text("chu172"));
    let v = client.roundtrip(&line);
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(200));
    assert_eq!(v.get("cached").and_then(Json::as_bool), Some(false));
    let trace = v.get("trace").and_then(Json::as_u64).expect("trace id");
    assert!(trace > 0);

    let timing = v.get("timing").expect("timing map on uncached synth");
    let service_us = v.get("service_us").and_then(Json::as_u64).unwrap();
    let mut sum = 0;
    let mut stages_seen = 0;
    for stage in nshot_obs::PIPELINE_STAGES {
        if let Some(us) = timing.get(stage.name()).and_then(Json::as_u64) {
            sum += us;
            stages_seen += 1;
        }
    }
    assert!(
        stages_seen >= 5,
        "expected most pipeline stages in the timing map, got {timing}"
    );
    assert!(
        sum <= service_us,
        "stage timings ({sum}us) exceed end-to-end service time ({service_us}us)"
    );

    // The cached replay answers without running the pipeline: no timing
    // map, fresh trace id.
    let v2 = client.roundtrip(&line);
    assert_eq!(v2.get("cached").and_then(Json::as_bool), Some(true));
    assert!(v2.get("timing").is_none(), "cache hit must not carry timing");
    let trace2 = v2.get("trace").and_then(Json::as_u64).unwrap();
    assert!(trace2 > trace, "trace ids increase per request");

    server.shutdown();
    server.wait();
}

/// A request that dies at the deadline still reports the per-stage
/// timings of every stage that completed before the budget ran out: the
/// 504 body carries a `partial_timing` object so an operator can see
/// where the time went without re-running the request under a tracer.
#[test]
fn timeout_response_carries_partial_stage_timings() {
    // combuf1's exhaustive model check (215k composed states) takes a few
    // hundred ms even in a release build; parse and synthesis finish in a
    // few ms. The deadline is noticed after the model-check stage (or
    // inside the Monte-Carlo fallback), so the parse/synthesis spans are
    // always on the books. (chu150 is too small here: its whole pipeline
    // can finish under 60 ms in release and answer 200.)
    let server = Server::bind(ServerConfig {
        timeout_ms: 60,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.local_addr());

    let line = Json::Obj(vec![
        ("id".into(), Json::Num(1.0)),
        ("op".into(), Json::Str("verify".into())),
        ("spec".into(), Json::Str(spec_text("combuf1"))),
    ])
    .to_string();
    let v = client.roundtrip(&line);
    assert_eq!(
        v.get("code").and_then(Json::as_u64),
        Some(504),
        "expected a deadline kill, got {v}"
    );

    let partial = v
        .get("partial_timing")
        .expect("504 must carry partial_timing for completed stages");
    let Json::Obj(entries) = partial else {
        panic!("partial_timing must be an object, got {partial}");
    };
    assert!(!entries.is_empty(), "no completed stages recorded");
    // A verify request runs the synthesis stages plus model_check (and
    // possibly monte_carlo fallback), so validate against the full span
    // vocabulary, not just the seven synthesis stages.
    let known: Vec<&str> = nshot_obs::STAGES.iter().map(|s| s.name()).collect();
    for (stage, us) in entries {
        assert!(
            known.contains(&stage.as_str()),
            "unknown stage '{stage}' in partial_timing"
        );
        assert!(us.as_u64().is_some(), "non-numeric timing for {stage}");
    }
    // The synthesis front half always beats a 60 ms deadline.
    assert!(
        entries.iter().any(|(k, _)| k == "parse"),
        "parse stage missing from {partial}"
    );

    // Timeouts are counted, and a 504 is never cached.
    let m = client.roundtrip(r#"{"id":2,"op":"metrics"}"#);
    let expo = m.get("exposition").and_then(Json::as_str).unwrap();
    assert!(
        expo.contains("nshot_responses_total{outcome=\"timeout\"} 1"),
        "timeout not counted"
    );

    server.shutdown();
    server.wait();
}

/// One exhaustive `verify` populates the model-checker's registry series:
/// run counters, cumulative state/edge/violation-check totals, the
/// eagerly-registered verdict family, and the exploration gauges all show
/// up in the Prometheus exposition (the parse test above already proves
/// every line is well-formed).
#[test]
fn verify_populates_model_checker_series() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr());

    let line = Json::Obj(vec![
        ("id".into(), Json::Num(1.0)),
        ("op".into(), Json::Str("verify".into())),
        ("spec".into(), Json::Str(spec_text("hazard"))),
    ])
    .to_string();
    let v = client.roundtrip(&line);
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(200), "{v}");
    assert_eq!(v.get("proved").and_then(Json::as_bool), Some(true));

    let m = client.roundtrip(r#"{"id":2,"op":"metrics"}"#);
    let expo = m.get("exposition").and_then(Json::as_str).unwrap();
    for series in [
        "nshot_mc_runs_total",
        "nshot_mc_states_total",
        "nshot_mc_edges_total",
        "nshot_mc_pruned_edges_total",
        "nshot_mc_reopened_total",
        "nshot_mc_violation_checks_total",
        "nshot_mc_peak_frontier",
        "nshot_mc_max_depth",
        "nshot_mc_visited_bytes",
        "nshot_mc_verdicts_total{verdict=\"proved\"}",
        "nshot_mc_verdicts_total{verdict=\"violated\"}",
        "nshot_mc_verdicts_total{verdict=\"budget_exceeded\"}",
    ] {
        assert!(expo.contains(series), "missing model-checker series {series}");
    }

    server.shutdown();
    server.wait();
}

/// Requests slower than the configured threshold are counted in the
/// server's `nshot_slow_requests_total`.
#[test]
fn slow_requests_are_counted() {
    // 1 ms threshold: an uncached synthesis of a big circuit trips it.
    // wrdatab is used by no other test in this binary, so the process-wide
    // espresso cache cannot have pre-solved its covers and turned the
    // request sub-millisecond.
    let server = Server::bind(ServerConfig {
        slow_ms: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.local_addr());

    let v = client.roundtrip(&synth_line(1, &spec_text("wrdatab")));
    assert_eq!(v.get("code").and_then(Json::as_u64), Some(200));

    let m = client.roundtrip(r#"{"id":2,"op":"metrics"}"#);
    let expo = m.get("exposition").and_then(Json::as_str).unwrap();
    assert!(
        expo.contains("nshot_slow_requests_total 1"),
        "slow request not counted:\n{expo}"
    );

    server.shutdown();
    server.wait();
}

/// Turning the NDJSON trace sink on must not change synthesis output by a
/// single byte, and a traced run covers every pipeline stage. The sink is
/// installed programmatically (`set_trace`) because `NSHOT_TRACE` is only
/// read once per process.
#[test]
fn trace_sink_does_not_change_netlist_bytes() {
    let spec = spec_text("qr42");
    let opts = SynthesisOptions::default();

    // Baseline with tracing off.
    let sg = nshot_sg::parse_sg(&spec).expect("parse");
    let baseline = synthesize(&sg, &opts).expect("synthesize").netlist.to_blif();

    // Same pipeline with the sink writing to a temp file, attributed to a
    // request context so span lines carry a trace id.
    let path = std::env::temp_dir().join(format!(
        "nshot_trace_determinism_{}.ndjson",
        std::process::id()
    ));
    nshot_obs::set_trace(Some(nshot_obs::TraceTarget::File(path.clone())));
    let (traced, _timings) = nshot_obs::with_request(nshot_obs::next_trace_id(), || {
        let sg = nshot_sg::parse_sg(&spec).expect("parse");
        synthesize(&sg, &opts).expect("synthesize").netlist.to_blif()
    });
    nshot_obs::set_trace(None); // flushes and closes the sink

    assert_eq!(baseline, traced, "trace sink changed synthesis output");

    let trace = std::fs::read_to_string(&path).expect("trace file");
    let _ = std::fs::remove_file(&path);
    for line in trace.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad trace line ({e}): {line}"));
        assert!(v.get("span").is_some() && v.get("us").is_some());
    }
    for stage in nshot_obs::PIPELINE_STAGES {
        let needle = format!("\"span\":\"{}\"", stage.name());
        assert!(
            trace.contains(&needle),
            "stage {} missing from trace",
            stage.name()
        );
    }
}
