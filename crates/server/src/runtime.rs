//! Reusable service runtime: the TCP plumbing every serving tier shares.
//!
//! Extracted from the original single-process server so the sharded front
//! (`nshot-shard`) and the backend workers (`nshot-serve`) run on *one*
//! implementation instead of two drifting copies:
//!
//! * [`TcpLineServer`] — bind, accept loop, one thread per connection,
//!   newline framing (empty and bare-`\r` lines skipped), cooperative stop
//!   flag. What to do with a request line is a [`LineHandler`], so the
//!   same loop serves synthesis backends (queue + workers behind it) and
//!   the shard front (a proxy with no queue at all).
//! * [`WorkerPool`] — the bounded job queue ([`nshot_par::BoundedQueue`])
//!   with explicit 429-style backpressure, a fixed worker-thread pool
//!   draining it, in-flight accounting and the condvar-based graceful
//!   drain the shutdown path waits on.
//!
//! Per-request deadlines stay cooperative (see [`crate::service::Deadline`]);
//! [`Deadline::after_ms`](crate::service::Deadline) is the one place the
//! `timeout_ms = 0 means unlimited` convention is interpreted.

use nshot_par::{BoundedQueue, PushError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a [`LineHandler`] wants done with one request line.
pub struct LineReply {
    /// The response line (no trailing newline; the runtime appends it).
    pub line: String,
    /// Stop the whole service once this reply has been flushed. The
    /// runtime raises the stop flag and wakes the accept loop; the handler
    /// is expected to have drained its own work before returning this.
    pub shutdown: bool,
    /// Switch this connection to binary (`nshot-wire`) framing once the
    /// reply has been flushed: every later exchange goes through
    /// [`LineHandler::handle_frame`]. Returned by the handler's `hello`
    /// negotiation ack.
    pub upgrade: bool,
}

impl LineReply {
    /// An ordinary reply.
    pub fn reply(line: String) -> LineReply {
        LineReply {
            line,
            shutdown: false,
            upgrade: false,
        }
    }

    /// A reply after which the service stops (graceful-shutdown ack).
    pub fn last_reply(line: String) -> LineReply {
        LineReply {
            line,
            shutdown: true,
            upgrade: false,
        }
    }
}

/// What a [`LineHandler`] wants done with one binary request frame (only
/// reachable after a [`LineReply::upgrade`]).
pub struct FrameReply {
    /// Encoded response frames, written in order and flushed together —
    /// a response streams out record by record (head, fields, end).
    pub frames: Vec<Vec<u8>>,
    /// Stop the whole service once the frames have been flushed (the
    /// binary shutdown ack), like [`LineReply::shutdown`].
    pub shutdown: bool,
}

/// One request line → one response line. Implementations own everything
/// protocol-level: parsing (including the UTF-8 check — a binary line is a
/// protocol error to answer, not a reason to drop the connection),
/// dispatch, counters, and rendering.
pub trait LineHandler: Send + Sync + 'static {
    /// Handle one framed line (newline stripped, may still carry a
    /// trailing `\r` from CRLF clients).
    fn handle_line(&self, raw: Vec<u8>) -> LineReply;

    /// Handle one binary request frame after a negotiated upgrade.
    /// `None` closes the connection — the default for handlers that never
    /// return [`LineReply::upgrade`], and the answer to a frame whose
    /// payload is structurally damaged (framing can no longer be
    /// trusted; the decode error has already been counted).
    fn handle_frame(&self, frame: nshot_wire::Frame) -> Option<FrameReply> {
        let _ = frame;
        None
    }
}

/// A bound NDJSON-over-TCP service: accept loop plus per-connection
/// threads, all funneling lines through one shared [`LineHandler`].
pub struct TcpLineServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpLineServer {
    /// Bind `addr` (port 0 picks an ephemeral port) and start accepting.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn bind<H: LineHandler>(addr: &str, handler: Arc<H>) -> std::io::Result<TcpLineServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("nshot-accept".into())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let handler = Arc::clone(&handler);
                    let stop = Arc::clone(&accept_stop);
                    let _ = std::thread::Builder::new()
                        .name("nshot-conn".into())
                        .spawn(move || serve_connection(&*handler, stream, &stop, addr));
                }
            })
            .expect("spawn accept loop");
        Ok(TcpLineServer {
            addr,
            stop,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raise the stop flag and wake the accept loop. In-flight connection
    /// threads finish the line they are handling, then close without
    /// reading further; new connections are refused.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect so the blocking `incoming()` observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until the accept loop has exited (after [`stop`](Self::stop)
    /// or a handler's `shutdown` reply).
    pub fn join(&self) {
        let handle = self.accept.lock().expect("accept handle poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// Serve one client connection: one request line in, one response line
/// out, in order, until EOF or a shutdown reply. After a negotiated
/// upgrade the same connection switches to length-framed binary records
/// (`nshot-wire`), one request frame in, a response frame stream out.
fn serve_connection<H: LineHandler + ?Sized>(
    handler: &H,
    stream: TcpStream,
    stop: &AtomicBool,
    local_addr: SocketAddr,
) {
    // Small request/response exchanges must not sit out Nagle + delayed-ACK
    // stalls — the binary path in particular streams a response as several
    // frames, and 40 ms per exchange would swamp every latency figure.
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let mut raw = Vec::new();
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if raw.last() == Some(&b'\n') {
            raw.pop();
        }
        // A stopped service answers nothing further, even on established
        // connections: closing here is what lets a peer (e.g. a shard
        // front's pooled connection) observe the shutdown as EOF instead
        // of talking to a half-dead server.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if raw.is_empty() || raw == b"\r" {
            continue;
        }
        let reply = handler.handle_line(raw);
        let mut line = reply.line;
        line.push('\n');
        if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if reply.shutdown {
            stop.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the stop flag.
            let _ = TcpStream::connect(local_addr);
            return;
        }
        if reply.upgrade {
            break;
        }
    }

    // Binary phase: the upgrade ack has been flushed, everything from
    // here is nshot-wire frames in both directions. A decode error has
    // already been counted by the frame reader; the connection closes
    // because its framing can no longer be trusted.
    loop {
        let frame = match nshot_wire::read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Some(reply) = handler.handle_frame(frame) else {
            return;
        };
        for bytes in &reply.frames {
            if writer.write_all(bytes).is_err() {
                return;
            }
        }
        if writer.flush().is_err() {
            return;
        }
        if reply.shutdown {
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(local_addr);
            return;
        }
    }
}

struct PoolShared<J> {
    queue: BoundedQueue<J>,
    in_flight: AtomicUsize,
    /// Signalled by workers after each finished job so the drain path can
    /// wait without spinning hot.
    drain: (Mutex<()>, Condvar),
}

/// A bounded job queue drained by a fixed pool of named worker threads.
/// `try_submit` never blocks — a full queue is an explicit backpressure
/// error the caller turns into a 429-style response.
pub struct WorkerPool<J: Send + 'static> {
    shared: Arc<PoolShared<J>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Start `workers` threads (named `{name}-{i}`) running `run` on each
    /// job popped from a queue of capacity `queue_cap`.
    pub fn new<F>(name: &str, workers: usize, queue_cap: usize, run: F) -> WorkerPool<J>
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let shared = Arc::new(PoolShared {
            queue: BoundedQueue::new(queue_cap),
            in_flight: AtomicUsize::new(0),
            drain: (Mutex::new(()), Condvar::new()),
        });
        let run = Arc::new(run);
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let run = Arc::clone(&run);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&shared, &*run))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueue one job; `Err(PushError::Full(depth))` is the caller's
    /// backpressure signal, `Err(PushError::Closed)` means a drain began.
    pub fn try_submit(&self, job: J) -> Result<(), PushError> {
        self.shared.queue.try_push(job)
    }

    /// Jobs currently queued (not yet popped by a worker).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// The queue's fixed capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Deepest the queue ever got.
    pub fn queue_high_water(&self) -> usize {
        self.shared.queue.high_water()
    }

    /// Close admission and block until every queued and in-flight job has
    /// finished. Idempotent; safe to call from a connection thread.
    pub fn drain(&self) {
        self.shared.queue.close();
        let (lock, cvar) = &self.shared.drain;
        let mut guard = lock.lock().expect("drain mutex poisoned");
        while !self.shared.queue.is_empty()
            || self.shared.in_flight.load(Ordering::SeqCst) > 0
        {
            let (g, _) = cvar
                .wait_timeout(guard, Duration::from_millis(20))
                .expect("drain mutex poisoned");
            guard = g;
        }
    }

    /// Join the worker threads. Call after [`drain`](Self::drain) — the
    /// workers only exit once the queue is closed and empty.
    pub fn join(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker handles poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Worker loop: pop jobs until the queue closes and drains.
fn worker_loop<J, F: Fn(J) + ?Sized>(shared: &PoolShared<J>, run: &F) {
    while let Some(job) = shared.queue.pop() {
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        run(job);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        let (lock, cvar) = &shared.drain;
        let _g = lock.lock().expect("drain mutex poisoned");
        cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_jobs_and_drains() {
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        let pool: WorkerPool<u64> = WorkerPool::new("t", 2, 8, move |j| {
            d.fetch_add(j, Ordering::SeqCst);
        });
        for j in 1..=5 {
            pool.try_submit(j).expect("submit");
        }
        pool.drain();
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 15);
        assert!(matches!(pool.try_submit(9), Err(PushError::Closed)));
    }

    #[test]
    fn full_queue_reports_depth() {
        // A pool with zero workers never pops, so the queue fills.
        let pool: WorkerPool<u8> = WorkerPool::new("t", 0, 2, |_| {});
        pool.try_submit(1).expect("submit");
        pool.try_submit(2).expect("submit");
        assert!(matches!(pool.try_submit(3), Err(PushError::Full(2))));
        assert_eq!(pool.queue_high_water(), 2);
    }

    struct Echo;
    impl LineHandler for Echo {
        fn handle_line(&self, raw: Vec<u8>) -> LineReply {
            let text = String::from_utf8_lossy(&raw).trim_end_matches('\r').to_owned();
            if text == "quit" {
                LineReply::last_reply("bye".into())
            } else {
                LineReply::reply(format!("echo {text}"))
            }
        }
    }

    /// Echoes lines until "up", then echoes binary frames; a REQUEST
    /// frame with an empty payload is the shutdown signal.
    struct FrameEcho;
    impl LineHandler for FrameEcho {
        fn handle_line(&self, raw: Vec<u8>) -> LineReply {
            if raw == b"up" {
                LineReply {
                    line: "ok".into(),
                    shutdown: false,
                    upgrade: true,
                }
            } else {
                LineReply::reply(String::from_utf8_lossy(&raw).into_owned())
            }
        }

        fn handle_frame(&self, frame: nshot_wire::Frame) -> Option<FrameReply> {
            if frame.payload.is_empty() {
                return Some(FrameReply {
                    frames: Vec::new(),
                    shutdown: true,
                });
            }
            Some(FrameReply {
                frames: vec![nshot_wire::encode_frame(frame.tag, &frame.payload)],
                shutdown: false,
            })
        }
    }

    #[test]
    fn connections_upgrade_to_binary_framing() {
        use nshot_wire::{encode_frame, read_frame, tags};
        let server = TcpLineServer::bind("127.0.0.1:0", Arc::new(FrameEcho)).expect("bind");
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);

        writer.write_all(b"ping\nup\n").expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "ping\n");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "ok\n");

        // Past the upgrade ack the connection speaks frames.
        writer
            .write_all(&encode_frame(tags::FIELD, b"binary now"))
            .expect("write frame");
        let back = read_frame(&mut reader).expect("frame").expect("some");
        assert_eq!(back.tag, tags::FIELD);
        assert_eq!(back.payload, b"binary now");

        // The binary shutdown path stops the whole service.
        writer
            .write_all(&encode_frame(tags::REQUEST, b""))
            .expect("write shutdown");
        server.join();
    }

    #[test]
    fn default_handlers_close_on_frames() {
        // Echo never upgrades; a handler without handle_frame support
        // closes the connection if it ever returns upgrade anyway — here
        // we just assert the default implementation is None.
        let frame = nshot_wire::Frame {
            tag: nshot_wire::tags::REQUEST,
            payload: b"x".to_vec(),
        };
        assert!(Echo.handle_frame(frame).is_none());
    }

    #[test]
    fn line_server_frames_and_stops() {
        let server = TcpLineServer::bind("127.0.0.1:0", Arc::new(Echo)).expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"hello\r\n\nquit\n").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "echo hello\n");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "bye\n");
        server.join();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may still accept briefly; a fresh request must go
                // unanswered either way.
                true
            }
        );
    }
}
