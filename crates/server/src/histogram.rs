//! Fixed-bucket latency histogram.
//!
//! Powers-of-two microsecond buckets: bucket *i* counts observations in
//! `[2^(i-1), 2^i)` µs (bucket 0 counts `0`). 40 buckets cover ~17 minutes,
//! far beyond any request timeout. Recording is O(1) with no allocation, so
//! the per-request overhead is a couple of adds — and quantiles are computed
//! from the counts on demand, conservatively reporting the *upper* edge of
//! the bucket the quantile falls in. All timing comes from
//! [`std::time::Instant`] at the call sites; the histogram itself never
//! consults a clock.

/// Number of power-of-two buckets (see module docs).
pub const NUM_BUCKETS: usize = 40;

/// A fixed-bucket histogram of microsecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

/// Index of the bucket covering `us`.
fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Upper edge (exclusive) of bucket `i`, in µs.
fn upper_edge(i: usize) -> u64 {
    if i == 0 {
        1
    } else {
        1u64 << i
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&mut self, us: u64) {
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in µs (0 with no observations).
    pub fn mean_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_us / self.count
        }
    }

    /// Largest observation in µs.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper edge of the bucket it
    /// falls in; 0 with no observations.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return upper_edge(i).min(self.max_us.max(1));
            }
        }
        upper_edge(NUM_BUCKETS - 1)
    }

    /// Median (p50) in µs.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th percentile in µs.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// The non-empty buckets as `(lower_us, upper_us, count)` triples, for
    /// reports and the stats endpoint.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lo = if i == 0 { 0 } else { upper_edge(i - 1) };
                (lo, upper_edge(i), n)
            })
            .collect()
    }

    /// Fold another histogram into this one (loadgen merges per-client
    /// histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let mut h = LatencyHistogram::default();
        for us in [10, 11, 12, 13, 900, 950, 1000, 1100, 9000, 100_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.p50_us();
        let p99 = h.p99_us();
        // p50 falls among the ~1ms observations, p99 in the 100ms tail.
        assert!(p50 >= 900 && p50 <= 2048, "p50 = {p50}");
        assert!(p99 >= 100_000 && p99 <= 131_072, "p99 = {p99}");
        assert!(h.mean_us() > 0);
        assert_eq!(h.max_us(), 100_000);
    }

    #[test]
    fn single_observation_everything_agrees() {
        let mut h = LatencyHistogram::default();
        h.record(5000);
        assert_eq!(h.p50_us(), h.p99_us());
        assert_eq!(h.mean_us(), 5000);
        assert_eq!(h.nonzero_buckets().len(), 1);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut whole = LatencyHistogram::default();
        for (i, us) in [3u64, 17, 200, 4096, 0, 65_000].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(*us);
            whole.record(*us);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.p50_us(), whole.p50_us());
        assert_eq!(a.p99_us(), whole.p99_us());
        assert_eq!(a.nonzero_buckets(), whole.nonzero_buckets());
    }
}
