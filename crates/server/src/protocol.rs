//! The NDJSON request/response protocol.
//!
//! One JSON object per line in each direction. Requests:
//!
//! ```text
//! {"id":1,"op":"synth","spec":".name hs\n…","method":"nshot",
//!  "minimizer":"heuristic","trials":8,"format":"blif","share":true}
//! {"id":2,"op":"verify","spec":".name hs\n…","minimizer":"heuristic",
//!  "max_states":4000000}
//! {"id":3,"op":"stats"}
//! {"id":4,"op":"ping"}
//! {"id":5,"op":"metrics"}
//! {"id":6,"op":"shutdown"}
//! ```
//!
//! `verify` synthesizes the N-SHOT implementation and then model-checks it
//! exhaustively with `nshot-mc`; past the state budget it falls back to
//! Monte-Carlo sampling (reported in the `method` field).
//!
//! Responses always carry `id` (echoed verbatim, `null` when the request
//! had none or was unparseable), `code` (HTTP-flavoured: 200 ok, 400 bad
//! request, 422 valid request the method cannot synthesize, 429 queue full,
//! 503 shutting down, 504 deadline exceeded), `status`, then the
//! result fields, and finally `cached`, `service_us`, the request's
//! `trace` id, and — on executed synthesis responses — a `timing` object
//! mapping pipeline stage names to µs spent. Everything up to `cached` is
//! a pure function of the request — that prefix is what the response cache
//! stores and what the loopback tests compare byte-for-byte against direct
//! library calls; `trace`/`timing` are observability and stamped on at
//! send time, like `service_us`.
//!
//! The `metrics` op answers inline with the Prometheus text exposition of
//! the service's registry plus the process-global one (pipeline-stage
//! histograms, espresso-cache counters), embedded as the `exposition`
//! string field (the protocol is NDJSON, so the text rides inside the
//! JSON envelope).

use crate::json::{self, Json};
use nshot_core::Minimizer;

/// Which synthesis flow to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's N-SHOT architecture (the service's raison d'être).
    Nshot,
    /// The SYN-like monotonous-cover baseline.
    Syn,
    /// The SIS-like bounded-delay baseline.
    Sis,
}

impl Method {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Nshot => "nshot",
            Method::Syn => "syn",
            Method::Sis => "sis",
        }
    }
}

/// Netlist text format requested in the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// BLIF (the SIS interchange format).
    Blif,
    /// Structural Verilog.
    Verilog,
    /// No netlist text (verdicts and estimates only).
    None,
}

impl OutputFormat {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            OutputFormat::Blif => "blif",
            OutputFormat::Verilog => "verilog",
            OutputFormat::None => "none",
        }
    }
}

/// A fully validated synthesis request.
#[derive(Debug, Clone)]
pub struct SynthRequest {
    /// The specification text: a `.g` STG (detected by a `.graph` section)
    /// or the SG text format.
    pub spec: String,
    /// Synthesis flow.
    pub method: Method,
    /// Two-level minimizer (N-SHOT only).
    pub minimizer: Minimizer,
    /// Monte-Carlo conformance trials to run after synthesis (0 = skip;
    /// N-SHOT only).
    pub trials: usize,
    /// Netlist text format to include.
    pub format: OutputFormat,
    /// Share structurally identical product terms (N-SHOT only).
    pub share: bool,
}

impl SynthRequest {
    /// The canonical response-cache key — the shared
    /// [`nshot_logic::request_key`] encoding, so the in-RAM response cache
    /// and the on-disk artifact store (`nshot-store`) key on identical
    /// bytes and can never drift. The full key is stored, so hash
    /// collisions cannot poison the cache.
    pub fn cache_key(&self) -> String {
        nshot_logic::request_key(
            self.method.name(),
            self.minimizer.name(),
            self.trials,
            self.format.name(),
            self.share,
            &self.spec,
        )
    }
}

/// Hard cap on the `verify` state budget a client may request: keeps one
/// request from committing the service to gigabytes of visited-set.
pub const MAX_VERIFY_STATES: usize = 50_000_000;

/// A fully validated verification request: synthesize, then model-check
/// the implementation exhaustively (`nshot-mc`).
#[derive(Debug, Clone)]
pub struct VerifyRequest {
    /// The specification text, same formats as [`SynthRequest::spec`].
    pub spec: String,
    /// Two-level minimizer used for the synthesis step.
    pub minimizer: Minimizer,
    /// Model-checker state budget; past it the service falls back to
    /// Monte-Carlo sampling.
    pub max_states: usize,
}

impl VerifyRequest {
    /// Response-cache key, sharing [`nshot_logic::request_key`]'s encoding
    /// with [`SynthRequest::cache_key`]: the op rides in the method slot and
    /// the state budget in the trials slot, so a `verify` response can never
    /// collide with a `synth` one for the same spec.
    pub fn cache_key(&self) -> String {
        nshot_logic::request_key(
            "verify",
            self.minimizer.name(),
            self.max_states,
            "none",
            false,
            &self.spec,
        )
    }
}

/// A request, parsed and validated.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a synthesis job (queued).
    Synth(SynthRequest),
    /// Run a synthesis + exhaustive model-checking job (queued).
    Verify(VerifyRequest),
    /// Report service counters (answered inline).
    Stats,
    /// Prometheus-text metrics exposition (answered inline).
    Metrics,
    /// Liveness probe (answered inline).
    Ping,
    /// Drain in-flight jobs and stop the service.
    Shutdown,
    /// Negotiate the connection's framing (answered inline). With
    /// `binary: true` the acknowledgement line is the last NDJSON on the
    /// connection: everything after it is length-framed `nshot-wire`
    /// records in both directions. `format: "json"` (the default) is an
    /// explicit no-op, so a client can always probe what the server speaks.
    Hello {
        /// Upgrade the connection to binary framing after the ack.
        binary: bool,
    },
}

/// A parsed request line: the echoed `id` plus the request itself.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Client correlation id, echoed verbatim in the response.
    pub id: Json,
    /// The validated request.
    pub request: Request,
}

/// Parse and validate one request line.
///
/// # Errors
///
/// `(id, message)` — the id is recovered when the line is valid JSON so
/// the error response can still be correlated.
pub fn parse_request(line: &str) -> Result<Envelope, (Json, String)> {
    let value = json::parse(line).map_err(|e| (Json::Null, format!("bad json: {e}")))?;
    let id = value.get("id").cloned().unwrap_or(Json::Null);
    let fail = |msg: String| (id.clone(), msg);

    if !matches!(value, Json::Obj(_)) {
        return Err(fail("request must be a json object".into()));
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing 'op'".into()))?;
    let request = match op {
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        "hello" => {
            let binary = match value.get("format").and_then(Json::as_str).unwrap_or("json") {
                "binary" => true,
                "json" => false,
                other => return Err(fail(format!("unknown wire format '{other}'"))),
            };
            Request::Hello { binary }
        }
        "synth" => {
            let spec = value
                .get("spec")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("synth needs a 'spec' string".into()))?
                .to_owned();
            let method = match value.get("method").and_then(Json::as_str).unwrap_or("nshot") {
                "nshot" => Method::Nshot,
                "syn" => Method::Syn,
                "sis" => Method::Sis,
                other => return Err(fail(format!("unknown method '{other}'"))),
            };
            let minimizer = match value
                .get("minimizer")
                .and_then(Json::as_str)
                .unwrap_or("heuristic")
            {
                "heuristic" => Minimizer::Heuristic,
                "exact" => Minimizer::Exact,
                "multi" => Minimizer::MultiOutput,
                other => return Err(fail(format!("unknown minimizer '{other}'"))),
            };
            let trials = match value.get("trials") {
                None => 0,
                Some(v) => v
                    .as_u64()
                    .filter(|&n| n <= 10_000)
                    .ok_or_else(|| fail("'trials' must be an integer ≤ 10000".into()))?
                    as usize,
            };
            let format = match value.get("format").and_then(Json::as_str).unwrap_or("blif") {
                "blif" => OutputFormat::Blif,
                "verilog" => OutputFormat::Verilog,
                "none" => OutputFormat::None,
                other => return Err(fail(format!("unknown format '{other}'"))),
            };
            // Defaults mirror `SynthesisOptions::default()` so a bare synth
            // request is byte-identical to a direct library call.
            let share = match value.get("share") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| fail("'share' must be a boolean".into()))?,
            };
            Request::Synth(SynthRequest {
                spec,
                method,
                minimizer,
                trials,
                format,
                share,
            })
        }
        "verify" => {
            let spec = value
                .get("spec")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("verify needs a 'spec' string".into()))?
                .to_owned();
            let minimizer = match value
                .get("minimizer")
                .and_then(Json::as_str)
                .unwrap_or("heuristic")
            {
                "heuristic" => Minimizer::Heuristic,
                "exact" => Minimizer::Exact,
                "multi" => Minimizer::MultiOutput,
                other => return Err(fail(format!("unknown minimizer '{other}'"))),
            };
            let max_states = match value.get("max_states") {
                None => nshot_core::DEFAULT_PROOF_STATES,
                Some(v) => v
                    .as_u64()
                    .filter(|&n| (1..=MAX_VERIFY_STATES as u64).contains(&n))
                    .ok_or_else(|| {
                        fail(format!(
                            "'max_states' must be an integer in 1..={MAX_VERIFY_STATES}"
                        ))
                    })? as usize,
            };
            Request::Verify(VerifyRequest {
                spec,
                minimizer,
                max_states,
            })
        }
        other => return Err(fail(format!("unknown op '{other}'"))),
    };
    Ok(Envelope { id, request })
}

/// The wire name of a minimizer (the `minimizer` field of a request).
/// Distinct from [`Minimizer`]'s canonical name, which is part of the
/// cache-key encoding and uses the `{:?}` spelling for store
/// compatibility.
pub fn minimizer_wire_name(m: Minimizer) -> &'static str {
    match m {
        Minimizer::Heuristic => "heuristic",
        Minimizer::Exact => "exact",
        Minimizer::MultiOutput => "multi",
    }
}

/// Render a validated envelope back to one canonical NDJSON request line
/// (no trailing newline). Every option is spelled out explicitly, so the
/// line parses back to the same validated request regardless of which
/// defaults the original client relied on. The shard front uses this to
/// forward a binary client's request to a JSON backend — correctness
/// rests on responses being functions of the *validated* request, not of
/// the client's original byte spelling.
pub fn render_request(env: &Envelope) -> String {
    let id = &env.id;
    match &env.request {
        Request::Synth(s) => format!(
            "{{\"id\":{id},\"op\":\"synth\",\"spec\":{},\"method\":\"{}\",\"minimizer\":\"{}\",\"trials\":{},\"format\":\"{}\",\"share\":{}}}",
            Json::Str(s.spec.clone()),
            s.method.name(),
            minimizer_wire_name(s.minimizer),
            s.trials,
            s.format.name(),
            s.share,
        ),
        Request::Verify(v) => format!(
            "{{\"id\":{id},\"op\":\"verify\",\"spec\":{},\"minimizer\":\"{}\",\"max_states\":{}}}",
            Json::Str(v.spec.clone()),
            minimizer_wire_name(v.minimizer),
            v.max_states,
        ),
        Request::Stats => format!("{{\"id\":{id},\"op\":\"stats\"}}"),
        Request::Metrics => format!("{{\"id\":{id},\"op\":\"metrics\"}}"),
        Request::Ping => format!("{{\"id\":{id},\"op\":\"ping\"}}"),
        Request::Shutdown => format!("{{\"id\":{id},\"op\":\"shutdown\"}}"),
        Request::Hello { binary } => format!(
            "{{\"id\":{id},\"op\":\"hello\",\"format\":\"{}\"}}",
            if *binary { "binary" } else { "json" },
        ),
    }
}

/// A response: the HTTP-flavoured code, a status word, and the result
/// fields. `code`/`status`/`body` are deterministic functions of the
/// request; `id`, `cached` and `service_us` are stamped on at send time.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP-flavoured status code (see module docs).
    pub code: u16,
    /// `"ok"`, `"error"`, or `"rejected"`.
    pub status: &'static str,
    /// Result fields, in render order.
    pub body: Vec<(String, Json)>,
}

impl Response {
    /// A 200 response with the given result fields.
    pub fn ok(body: Vec<(String, Json)>) -> Self {
        Response {
            code: 200,
            status: "ok",
            body,
        }
    }

    /// An error response (`code` ∈ {400, 422, 500, 504}).
    pub fn error(code: u16, message: impl Into<String>) -> Self {
        Response {
            code,
            status: "error",
            body: vec![("error".into(), Json::Str(message.into()))],
        }
    }

    /// A 429/503 backpressure rejection.
    pub fn rejected(code: u16, message: impl Into<String>, depth: Option<usize>) -> Self {
        let mut body = vec![("error".into(), Json::Str(message.into()))];
        if let Some(d) = depth {
            body.push(("queue_depth".into(), Json::Num(d as f64)));
        }
        Response {
            code,
            status: "rejected",
            body,
        }
    }

    /// The deterministic prefix — `code`, `status` and the body fields —
    /// rendered as the inner part of the response object. This is the
    /// string the response cache stores.
    pub fn deterministic_fields(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "\"code\":{},\"status\":\"{}\"",
            self.code, self.status
        ));
        for (k, v) in &self.body {
            s.push_str(&format!(",{}:{}", Json::Str(k.clone()), v));
        }
        s
    }
}

/// Assemble a complete response line from the deterministic prefix and the
/// per-call fields: `cached`, `service_us`, the request's `trace` id, and
/// — when `timing_json` is non-empty — the per-stage `timing` object (a
/// JSON string like `{"parse":12,"minimize":140}`). The caller appends the
/// trailing `\n`.
pub fn render_response(
    id: &Json,
    deterministic_fields: &str,
    cached: bool,
    service_us: u64,
    trace_id: u64,
    timing_json: &str,
) -> String {
    let timing = if timing_json.is_empty() {
        String::new()
    } else {
        format!(",\"timing\":{timing_json}")
    };
    format!(
        "{{\"id\":{id},{deterministic_fields},\"cached\":{cached},\"service_us\":{service_us},\"trace\":{trace_id}{timing}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_synth_request() {
        let env = parse_request(
            r#"{"id":3,"op":"synth","spec":".inputs r\n","method":"syn","minimizer":"exact","trials":4,"format":"verilog","share":false}"#,
        )
        .unwrap();
        let Request::Synth(s) = env.request else {
            panic!("expected synth")
        };
        assert_eq!(env.id.as_u64(), Some(3));
        assert_eq!(s.method, Method::Syn);
        assert_eq!(s.minimizer, Minimizer::Exact);
        assert_eq!(s.trials, 4);
        assert_eq!(s.format, OutputFormat::Verilog);
        assert!(!s.share);
        assert_eq!(s.spec, ".inputs r\n");
    }

    #[test]
    fn defaults_are_nshot_heuristic_blif() {
        let env = parse_request(r#"{"op":"synth","spec":"x"}"#).unwrap();
        let Request::Synth(s) = env.request else {
            panic!("expected synth")
        };
        assert_eq!(s.method, Method::Nshot);
        assert_eq!(s.minimizer, Minimizer::Heuristic);
        assert_eq!(s.trials, 0);
        assert_eq!(s.format, OutputFormat::Blif);
        assert!(!s.share, "share defaults off, like SynthesisOptions");
    }

    #[test]
    fn errors_keep_the_id_when_json_is_valid() {
        let (id, msg) = parse_request(r#"{"id":"abc","op":"synth"}"#).unwrap_err();
        assert_eq!(id.as_str(), Some("abc"));
        assert!(msg.contains("spec"));
        let (id, _) = parse_request("not json").unwrap_err();
        assert_eq!(id, Json::Null);
    }

    #[test]
    fn rejects_unknown_enums_and_oversized_trials() {
        for bad in [
            r#"{"op":"synth","spec":"x","method":"magic"}"#,
            r#"{"op":"synth","spec":"x","minimizer":"quantum"}"#,
            r#"{"op":"synth","spec":"x","format":"edif"}"#,
            r#"{"op":"synth","spec":"x","trials":999999}"#,
            r#"{"op":"synth","spec":"x","trials":-1}"#,
            r#"{"op":"synth","spec":"x","share":"yes"}"#,
            r#"{"op":"fly"}"#,
            r#"{"spec":"x"}"#,
            r#"[1,2]"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn cache_key_distinguishes_options() {
        let base = SynthRequest {
            spec: ".inputs r\n".into(),
            method: Method::Nshot,
            minimizer: Minimizer::Heuristic,
            trials: 0,
            format: OutputFormat::Blif,
            share: true,
        };
        let mut other = base.clone();
        other.share = false;
        assert_ne!(base.cache_key(), other.cache_key());
        let mut fmt = base.clone();
        fmt.format = OutputFormat::None;
        assert_ne!(base.cache_key(), fmt.cache_key());
        assert_eq!(base.cache_key(), base.clone().cache_key());
    }

    #[test]
    fn cache_key_encoding_is_stable() {
        // Stores written by older releases (which rendered the minimizer
        // with `{:?}`) must keep hitting: the encoding is a compatibility
        // contract, not an implementation detail.
        let req = SynthRequest {
            spec: ".inputs r\n".into(),
            method: Method::Nshot,
            minimizer: Minimizer::MultiOutput,
            trials: 4,
            format: OutputFormat::Verilog,
            share: true,
        };
        assert_eq!(req.cache_key(), "nshot|MultiOutput|4|verilog|true|.inputs r\n");
        assert_eq!(
            req.cache_key(),
            format!(
                "{}|{:?}|{}|{}|{}|{}",
                req.method.name(),
                req.minimizer,
                req.trials,
                req.format.name(),
                req.share,
                req.spec
            ),
        );
    }

    #[test]
    fn rendered_response_is_one_parseable_line() {
        let r = Response::ok(vec![
            ("name".into(), Json::Str("hs".into())),
            ("area".into(), Json::Num(52.0)),
        ]);
        let line = render_response(
            &Json::Num(9.0),
            &r.deterministic_fields(),
            false,
            1234,
            7,
            "{\"parse\":3,\"minimize\":900}",
        );
        assert!(!line.contains('\n'));
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("code").unwrap().as_u64(), Some(200));
        assert_eq!(v.get("area").unwrap().as_u64(), Some(52));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("service_us").unwrap().as_u64(), Some(1234));
        assert_eq!(v.get("trace").unwrap().as_u64(), Some(7));
        let timing = v.get("timing").unwrap();
        assert_eq!(timing.get("minimize").unwrap().as_u64(), Some(900));
    }

    #[test]
    fn empty_timing_is_omitted() {
        let r = Response::error(429, "queue full");
        let line = render_response(&Json::Null, &r.deterministic_fields(), false, 10, 3, "");
        assert!(!line.contains("timing"));
        assert!(line.contains("\"trace\":3"));
        crate::json::parse(&line).unwrap();
    }

    #[test]
    fn parses_a_verify_request_with_defaults() {
        let env = parse_request(r#"{"id":7,"op":"verify","spec":".inputs r\n"}"#).unwrap();
        let Request::Verify(v) = env.request else {
            panic!("expected verify")
        };
        assert_eq!(v.minimizer, Minimizer::Heuristic);
        assert_eq!(v.max_states, nshot_core::DEFAULT_PROOF_STATES);
        assert_eq!(v.spec, ".inputs r\n");

        let env = parse_request(
            r#"{"op":"verify","spec":"x","minimizer":"exact","max_states":1000}"#,
        )
        .unwrap();
        let Request::Verify(v) = env.request else {
            panic!("expected verify")
        };
        assert_eq!(v.minimizer, Minimizer::Exact);
        assert_eq!(v.max_states, 1000);
    }

    #[test]
    fn verify_rejects_bad_fields() {
        for bad in [
            r#"{"op":"verify"}"#,
            r#"{"op":"verify","spec":"x","minimizer":"quantum"}"#,
            r#"{"op":"verify","spec":"x","max_states":0}"#,
            r#"{"op":"verify","spec":"x","max_states":999999999999}"#,
            r#"{"op":"verify","spec":"x","max_states":"lots"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn verify_cache_key_cannot_collide_with_synth() {
        let v = VerifyRequest {
            spec: ".inputs r\n".into(),
            minimizer: Minimizer::Heuristic,
            max_states: 4,
        };
        let s = SynthRequest {
            spec: ".inputs r\n".into(),
            method: Method::Nshot,
            minimizer: Minimizer::Heuristic,
            trials: 4,
            format: OutputFormat::None,
            share: false,
        };
        assert_ne!(v.cache_key(), s.cache_key());
        let mut bigger = v.clone();
        bigger.max_states = 8;
        assert_ne!(v.cache_key(), bigger.cache_key());
    }

    #[test]
    fn metrics_op_parses() {
        let env = parse_request(r#"{"id":1,"op":"metrics"}"#).unwrap();
        assert!(matches!(env.request, Request::Metrics));
    }

    #[test]
    fn rendered_requests_parse_back_to_the_same_request() {
        for line in [
            r#"{"id":3,"op":"synth","spec":".inputs r\n","method":"syn","minimizer":"multi","trials":4,"format":"verilog","share":true}"#,
            r#"{"op":"synth","spec":"x"}"#,
            r#"{"id":"k","op":"verify","spec":"x","minimizer":"exact","max_states":1000}"#,
            r#"{"op":"ping"}"#,
            r#"{"id":9,"op":"shutdown"}"#,
            r#"{"op":"hello","format":"binary"}"#,
        ] {
            let env = parse_request(line).unwrap();
            let rendered = render_request(&env);
            // The rendered line is canonical: parsing it and rendering
            // again is a fixed point.
            let reparsed = parse_request(&rendered).unwrap();
            assert_eq!(render_request(&reparsed), rendered, "not canonical: {line}");
            // And the cache key (the routing key) survives the round trip.
            match (&env.request, &reparsed.request) {
                (Request::Synth(a), Request::Synth(b)) => {
                    assert_eq!(a.cache_key(), b.cache_key());
                }
                (Request::Verify(a), Request::Verify(b)) => {
                    assert_eq!(a.cache_key(), b.cache_key());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn hello_negotiates_framing() {
        let env = parse_request(r#"{"id":1,"op":"hello","format":"binary"}"#).unwrap();
        assert!(matches!(env.request, Request::Hello { binary: true }));
        let env = parse_request(r#"{"op":"hello","format":"json"}"#).unwrap();
        assert!(matches!(env.request, Request::Hello { binary: false }));
        let env = parse_request(r#"{"op":"hello"}"#).unwrap();
        assert!(matches!(env.request, Request::Hello { binary: false }));
        assert!(parse_request(r#"{"op":"hello","format":"ascii"}"#).is_err());
    }
}
