//! A minimal JSON codec for the NDJSON wire protocol.
//!
//! Std-only by policy (the workspace builds offline, so serde is out of
//! reach), and deliberately small: objects preserve insertion order so a
//! rendered response is byte-deterministic, numbers are `f64` (every value
//! the protocol carries fits losslessly), and strings escape all control
//! characters so any `.g`/SG specification — newlines included — travels on
//! a single line.

use std::fmt;

/// A JSON value. Objects are ordered pair lists: rendering is deterministic
/// and key lookup is linear (protocol objects have < 20 keys).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use std::fmt::Write as _;

/// Parse a complete JSON document. Trailing non-whitespace is an error.
///
/// # Errors
///
/// A human-readable description with a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number at byte {start}"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of unescaped bytes at once and
                    // validate it once. `"` (0x22) and `\` (0x5C) are ASCII
                    // and never occur inside a multi-byte UTF-8 sequence,
                    // so a bytewise scan cannot split a scalar. (Validating
                    // the *remaining input* per character instead makes
                    // parsing quadratic — a multi-megabyte spec string took
                    // tens of seconds.)
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(run);
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (and a following low surrogate if
    /// needed). On entry `pos` is at the `u`.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hex4 = |p: &mut Parser<'a>| -> Result<u32, String> {
            let s = p
                .bytes
                .get(p.pos..p.pos + 4)
                .ok_or("truncated \\u escape")?;
            let s = std::str::from_utf8(s).map_err(|_| "bad \\u escape".to_string())?;
            let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
            p.pos += 4;
            Ok(v)
        };
        self.pos += 1; // past 'u'
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a \uXXXX low surrogate.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let lo = hex4(self)?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| "bad surrogate pair".into());
                }
            }
            return Err("lone high surrogate".into());
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err("lone low surrogate".into());
        }
        char::from_u32(hi).ok_or_else(|| "bad \\u escape".into())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_request_shaped_object() {
        let spec = ".name hs\n.inputs r\n.outputs g\n# τ→λ\n";
        let obj = Json::Obj(vec![
            ("id".into(), Json::Num(7.0)),
            ("op".into(), Json::Str("synth".into())),
            ("spec".into(), Json::Str(spec.into())),
            ("share".into(), Json::Bool(true)),
            ("trials".into(), Json::Num(0.0)),
        ]);
        let line = obj.to_string();
        assert!(!line.contains('\n'), "NDJSON must stay on one line");
        let back = parse(&line).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.get("spec").unwrap().as_str(), Some(spec));
        assert_eq!(back.get("id").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s":"a\tb\u00e9\ud83d\ude00","n":-4.5,"x":null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\tbé😀"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-4.5));
        assert_eq!(v.get("x"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{\"s\":\"\\ud800\"}",
            "nul",
            "1e999",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_render_integers_exactly()  {
        assert_eq!(Json::Num(429.0).to_string(), "429");
        assert_eq!(Json::Num(4.8).to_string(), "4.8");
        assert_eq!(parse("429").unwrap().as_u64(), Some(429));
    }

    #[test]
    fn control_characters_are_escaped() {
        let s = Json::Str("a\u{1}\u{1f}b".into()).to_string();
        assert_eq!(s, "\"a\\u0001\\u001fb\"");
        assert_eq!(parse(&s).unwrap().as_str(), Some("a\u{1}\u{1f}b"));
    }
}
