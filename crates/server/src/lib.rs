//! # nshot-server — the N-SHOT synthesis service
//!
//! A std-only TCP service speaking newline-delimited JSON: each request
//! carries a `.g` STG or SG-text specification plus options (method
//! nshot/syn/sis, exact vs heuristic minimization, Monte-Carlo trial
//! count), and each response carries the synthesized netlist, area/delay
//! estimates, trigger/delay-requirement verdicts and timing. Around that
//! core sits the production plumbing the ROADMAP's north star asks for:
//!
//! * a **bounded job queue** ([`nshot_par::BoundedQueue`]) with explicit
//!   backpressure — a full queue rejects immediately with a 429-style
//!   response carrying the observed depth, instead of buffering without
//!   bound;
//! * a **worker pool** draining the queue, sized like the synthesis
//!   pipeline's own pool ([`nshot_par::num_threads`]);
//! * per-request **wall-clock deadlines**, enforced cooperatively between
//!   pipeline stages (see [`service`]);
//! * a **whole-response cache** keyed on the canonical encoding of
//!   (specification text, options), built on the same bounded segmented
//!   cache that backs the espresso memo table
//!   ([`nshot_logic::BoundedCache`]);
//! * a **`stats`** request exposing counters (requests, cache hits, queue
//!   high-water mark, p50/p99 latency from a fixed-bucket
//!   [`histogram::LatencyHistogram`] — all timing from
//!   [`std::time::Instant`]);
//! * **graceful shutdown** on a control request: admission closes, queued
//!   and in-flight jobs drain, workers exit, and only then is the shutdown
//!   acknowledged.
//!
//! Protocol details live in [`protocol`]; the deterministic request
//! execution in [`service`]. The load harness is
//! `cargo run --release -p nshot-bench --bin loadgen`.

pub mod histogram;
pub mod json;
pub mod protocol;
pub mod service;

pub use histogram::LatencyHistogram;
pub use json::Json;
pub use protocol::{Envelope, Method, OutputFormat, Request, Response, SynthRequest};
pub use service::{load_spec, process_synth, Deadline};

use nshot_logic::BoundedCache;
use nshot_par::{BoundedQueue, PushError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service configuration. `Default` gives a loopback service on an
/// ephemeral port with generous limits.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the job queue (0 = [`nshot_par::num_threads`]).
    pub workers: usize,
    /// Job-queue capacity; a full queue rejects with 429.
    pub queue_cap: usize,
    /// Per-request wall-clock budget in ms (0 = unlimited).
    pub timeout_ms: u64,
    /// Whole-response cache entry cap (0 disables the cache).
    pub cache_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_cap: 64,
            timeout_ms: 30_000,
            cache_cap: 1024,
        }
    }
}

/// Monotonic service counters (all lock-free except the histogram).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    synth_requests: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    rejects: AtomicU64,
    timeouts: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// One queued synthesis job: the request, its deadline, and the channel the
/// worker answers on.
struct Job {
    synth: SynthRequest,
    deadline: Deadline,
    reply: mpsc::Sender<Response>,
}

/// State shared by the accept loop, connection handlers and workers.
struct Shared {
    config: ServerConfig,
    started: Instant,
    queue: BoundedQueue<Job>,
    cache: Mutex<BoundedCache<String, String>>,
    counters: Counters,
    latency: Mutex<LatencyHistogram>,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    /// Signalled by workers after each finished job so the shutdown path
    /// can wait for the drain.
    drain: (Mutex<()>, Condvar),
}

impl Shared {
    fn count_code(&self, code: u16) {
        match code {
            200 => self.counters.ok.fetch_add(1, Ordering::Relaxed),
            429 | 503 => self.counters.rejects.fetch_add(1, Ordering::Relaxed),
            504 => self.counters.timeouts.fetch_add(1, Ordering::Relaxed),
            400..=499 => self.counters.client_errors.fetch_add(1, Ordering::Relaxed),
            _ => self.counters.server_errors.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// The deterministic stats body (counter snapshot).
    fn stats_response(&self) -> Response {
        let c = &self.counters;
        let latency = self.latency.lock().expect("latency poisoned");
        let (cache_len, cache_evictions) = {
            let cache = self.cache.lock().expect("cache poisoned");
            (cache.len(), cache.evictions())
        };
        let espresso = nshot_logic::cache_stats();
        let num = |n: u64| Json::Num(n as f64);
        Response::ok(vec![
            ("uptime_ms".into(), num(self.started.elapsed().as_millis() as u64)),
            ("requests".into(), num(c.requests.load(Ordering::Relaxed))),
            (
                "synth_requests".into(),
                num(c.synth_requests.load(Ordering::Relaxed)),
            ),
            ("ok".into(), num(c.ok.load(Ordering::Relaxed))),
            (
                "client_errors".into(),
                num(c.client_errors.load(Ordering::Relaxed)),
            ),
            (
                "server_errors".into(),
                num(c.server_errors.load(Ordering::Relaxed)),
            ),
            ("rejects".into(), num(c.rejects.load(Ordering::Relaxed))),
            ("timeouts".into(), num(c.timeouts.load(Ordering::Relaxed))),
            (
                "queue".into(),
                Json::Obj(vec![
                    ("depth".into(), Json::Num(self.queue.len() as f64)),
                    (
                        "capacity".into(),
                        Json::Num(self.queue.capacity() as f64),
                    ),
                    (
                        "high_water".into(),
                        Json::Num(self.queue.high_water() as f64),
                    ),
                ]),
            ),
            (
                "response_cache".into(),
                Json::Obj(vec![
                    ("hits".into(), num(c.cache_hits.load(Ordering::Relaxed))),
                    ("misses".into(), num(c.cache_misses.load(Ordering::Relaxed))),
                    ("entries".into(), Json::Num(cache_len as f64)),
                    ("evictions".into(), num(cache_evictions)),
                ]),
            ),
            (
                "espresso_cache".into(),
                Json::Obj(vec![
                    ("hits".into(), num(espresso.hits)),
                    ("misses".into(), num(espresso.misses)),
                    ("evictions".into(), num(espresso.evictions)),
                    ("entries".into(), Json::Num(nshot_logic::cache_len() as f64)),
                ]),
            ),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("count".into(), num(latency.count())),
                    ("p50".into(), num(latency.p50_us())),
                    ("p99".into(), num(latency.p99_us())),
                    ("mean".into(), num(latency.mean_us())),
                    ("max".into(), num(latency.max_us())),
                    (
                        "buckets".into(),
                        Json::Arr(
                            latency
                                .nonzero_buckets()
                                .into_iter()
                                .map(|(lo, hi, n)| {
                                    Json::Arr(vec![
                                        Json::Num(lo as f64),
                                        Json::Num(hi as f64),
                                        Json::Num(n as f64),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Close admission and wait for queued + in-flight jobs to finish.
    fn drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        let (lock, cvar) = &self.drain;
        let mut guard = lock.lock().expect("drain mutex poisoned");
        while !self.queue.is_empty() || self.in_flight.load(Ordering::SeqCst) > 0 {
            let (g, _) = cvar
                .wait_timeout(guard, Duration::from_millis(20))
                .expect("drain mutex poisoned");
            guard = g;
        }
    }

    fn notify_drain(&self) {
        let (lock, cvar) = &self.drain;
        let _g = lock.lock().expect("drain mutex poisoned");
        cvar.notify_all();
    }
}

/// Worker loop: pop jobs until the queue closes and drains.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let response = if job.deadline.expired() {
            Response::error(504, "deadline exceeded while queued")
        } else {
            process_synth(&job.synth, &job.deadline)
        };
        // A dropped receiver just means the client hung up mid-request.
        let _ = job.reply.send(response);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.notify_drain();
    }
}

/// Whether a response prefix may be served from / stored in the cache:
/// only deterministic outcomes (success, spec parse errors, synthesis
/// rejections) — never backpressure or deadline artifacts.
fn cacheable(code: u16) -> bool {
    matches!(code, 200 | 400 | 422)
}

/// Handle one synthesis request end to end (cache → queue → worker →
/// cache fill). Returns the deterministic field string, the code, and
/// whether it was served from cache.
fn run_synth(shared: &Shared, synth: SynthRequest) -> (u16, String, bool) {
    shared
        .counters
        .synth_requests
        .fetch_add(1, Ordering::Relaxed);

    let key = (shared.config.cache_cap > 0).then(|| synth.cache_key());
    if let Some(key) = &key {
        let mut cache = shared.cache.lock().expect("cache poisoned");
        if let Some(hit) = cache.get(key) {
            let fields = hit.clone();
            drop(cache);
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            // The cached prefix starts with `"code":NNN`.
            let code: u16 = fields[7..10].parse().unwrap_or(200);
            return (code, fields, true);
        }
        shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    if shared.shutdown.load(Ordering::SeqCst) {
        let r = Response::rejected(503, "shutting down", None);
        return (r.code, r.deterministic_fields(), false);
    }

    let deadline = Deadline(
        (shared.config.timeout_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(shared.config.timeout_ms)),
    );
    let (tx, rx) = mpsc::channel();
    let job = Job {
        synth,
        deadline,
        reply: tx,
    };
    let response = match shared.queue.try_push(job) {
        Ok(()) => rx.recv().unwrap_or_else(|_| {
            // Workers only exit after the queue is closed *and* drained, so
            // an accepted job always gets an answer; this is a last-resort
            // guard, not an expected path.
            Response::error(500, "worker dropped the job")
        }),
        Err(PushError::Full(depth)) => {
            Response::rejected(429, "queue full", Some(depth))
        }
        Err(PushError::Closed) => Response::rejected(503, "shutting down", None),
    };

    let fields = response.deterministic_fields();
    if cacheable(response.code) {
        if let Some(key) = key {
            shared
                .cache
                .lock()
                .expect("cache poisoned")
                .insert(key, fields.clone());
        }
    }
    (response.code, fields, false)
}

/// Serve one client connection (one request per line, one response line
/// each, in order).
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, local_addr: SocketAddr) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.split(b'\n') {
        let Ok(raw) = line else { break };
        if raw.is_empty() || raw == b"\r" {
            continue;
        }
        let t0 = Instant::now();
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);

        // Non-UTF-8 bytes are a protocol error, answered — not a panic, not
        // a dropped connection.
        let parsed = match String::from_utf8(raw) {
            Ok(text) => protocol::parse_request(text.trim_end_matches('\r')),
            Err(_) => Err((Json::Null, "request is not valid utf-8".into())),
        };

        let mut shutdown_after_reply = false;
        let (id, code, fields, cached) = match parsed {
            Err((id, message)) => {
                let r = Response::error(400, message);
                (id, r.code, r.deterministic_fields(), false)
            }
            Ok(Envelope { id, request }) => match request {
                Request::Ping => {
                    let r = Response::ok(vec![("pong".into(), Json::Bool(true))]);
                    (id, r.code, r.deterministic_fields(), false)
                }
                Request::Stats => {
                    let r = shared.stats_response();
                    (id, r.code, r.deterministic_fields(), false)
                }
                Request::Shutdown => {
                    shared.drain();
                    shutdown_after_reply = true;
                    let r = Response::ok(vec![
                        ("shutdown".into(), Json::Bool(true)),
                        ("drained".into(), Json::Bool(true)),
                        (
                            "served".into(),
                            Json::Num(
                                shared.counters.requests.load(Ordering::Relaxed) as f64,
                            ),
                        ),
                    ]);
                    (id, r.code, r.deterministic_fields(), false)
                }
                Request::Synth(synth) => {
                    let (code, fields, cached) = run_synth(shared, synth);
                    (id, code, fields, cached)
                }
            },
        };

        shared.count_code(code);
        let service_us = t0.elapsed().as_micros() as u64;
        shared
            .latency
            .lock()
            .expect("latency poisoned")
            .record(service_us);

        let mut line = protocol::render_response(&id, &fields, cached, service_us);
        line.push('\n');
        if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if shutdown_after_reply {
            // Wake the accept loop so it observes the shutdown flag.
            let _ = TcpStream::connect(local_addr);
            break;
        }
    }
}

/// A running service. Dropping the handle does **not** stop the server;
/// send a `shutdown` request or call [`Server::shutdown`], then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start: workers first, then the accept loop.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            nshot_par::num_threads()
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_cap),
            cache: Mutex::new(BoundedCache::new(config.cache_cap.max(2))),
            counters: Counters::default(),
            latency: Mutex::new(LatencyHistogram::default()),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            drain: (Mutex::new(()), Condvar::new()),
            started: Instant::now(),
            config,
        });

        let worker_handles: Vec<_> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nshot-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("nshot-accept".into())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let shared = Arc::clone(&accept_shared);
                    let _ = std::thread::Builder::new()
                        .name("nshot-conn".into())
                        .spawn(move || handle_connection(&shared, stream, addr));
                }
            })
            .expect("spawn accept loop");

        Ok(Server {
            shared,
            addr,
            accept,
            workers: worker_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Programmatic graceful shutdown: drain jobs, stop the accept loop.
    pub fn shutdown(&self) {
        self.shared.drain();
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until the service has shut down (via a `shutdown` request or
    /// [`Server::shutdown`]) and every worker has exited.
    pub fn wait(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}
