//! # nshot-server — the N-SHOT synthesis service
//!
//! A std-only TCP service speaking newline-delimited JSON: each request
//! carries a `.g` STG or SG-text specification plus options (method
//! nshot/syn/sis, exact vs heuristic minimization, Monte-Carlo trial
//! count), and each response carries the synthesized netlist, area/delay
//! estimates, trigger/delay-requirement verdicts and timing. The `verify`
//! op additionally model-checks the synthesized implementation with
//! `nshot-mc` — exhaustive proof within the state budget, Monte-Carlo
//! fallback past it. Around that core sits the production plumbing the
//! ROADMAP's north star asks for:
//!
//! * the **reusable runtime layer** ([`runtime`]): the TCP accept loop +
//!   newline framing ([`runtime::TcpLineServer`]) and the bounded job
//!   queue + worker pool + graceful drain ([`runtime::WorkerPool`]).
//!   The sharded serving tier (`nshot-shard`) runs its front on the same
//!   module, so there is exactly one accept/queue/drain implementation in
//!   the tree;
//! * explicit **backpressure** — a full queue rejects immediately with a
//!   429-style response carrying the observed depth, instead of buffering
//!   without bound;
//! * per-request **wall-clock deadlines**, enforced cooperatively between
//!   pipeline stages (see [`service`]);
//! * a **whole-response cache** keyed on the canonical encoding of
//!   (specification text, options), built on the same bounded segmented
//!   cache that backs the espresso memo table
//!   ([`nshot_logic::BoundedCache`]);
//! * **observability** via `nshot-obs`: every request gets a trace id
//!   ([`nshot_obs::next_trace_id`]); workers execute jobs inside
//!   [`nshot_obs::with_request`], so the pipeline's stage spans are
//!   attributed to the request and surface as a per-response `timing`
//!   map. Service counters and the request-latency histogram live in a
//!   per-server [`nshot_obs::Registry`]; the **`metrics`** op renders it
//!   (plus the process-global registry with the stage histograms and
//!   espresso-cache counters) as Prometheus text. The **`stats`** op
//!   keeps its JSON counter snapshot;
//! * **graceful shutdown** on a control request: admission closes, queued
//!   and in-flight jobs drain, workers exit, and only then is the shutdown
//!   acknowledged. [`Server::wait`] returns a [`ShutdownReport`] with the
//!   final counters and metrics snapshot;
//! * a shared **NDJSON client** ([`client`]) used by the load generator,
//!   the shard front's proxy path and the metrics fan-out.
//!
//! Protocol details live in [`protocol`]; the deterministic request
//! execution in [`service`]. The load harness is
//! `cargo run --release -p nshot-bench --bin loadgen`.

pub mod client;
pub mod json;
pub mod protocol;
pub mod runtime;
pub mod service;
pub mod wirecodec;

pub use json::Json;
/// The fixed-bucket latency histogram now lives in `nshot-obs`; the old
/// name is kept as an alias for downstream users (loadgen).
pub use nshot_obs::Histogram as LatencyHistogram;
pub use protocol::{
    Envelope, Method, OutputFormat, Request, Response, SynthRequest, VerifyRequest,
};
pub use service::{load_spec, process_synth, process_verify, Deadline};

use nshot_logic::BoundedCache;
use nshot_obs::{AtomicHistogram, Counter, Gauge, Registry, StageTimings};
use nshot_par::PushError;
use nshot_store::{Store, StoreConfig, StoreReport};
use runtime::{FrameReply, LineHandler, LineReply, TcpLineServer, WorkerPool};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

pub use nshot_store::FsyncPolicy;

/// Version stamped on every persisted response record. Bump when the
/// persisted payload changes shape. Version 2 is the binary encoding
/// ([`wirecodec::encode_response_value`]: code, status byte, structured
/// body); version 1 — the rendered deterministic-field JSON string — is
/// listed in [`RESPONSE_STORE_LEGACY`], so old records keep being served
/// byte-identically while every new write (cache fills, compaction
/// rewrites) lands in binary.
pub const RESPONSE_STORE_VERSION: u32 = 2;

/// Older persisted-payload versions this release still reads. Drop a
/// version from this list and [`Store::open`] counts its records stale
/// and recompiles them instead.
pub const RESPONSE_STORE_LEGACY: &[u32] = &[1];

/// Service configuration. `Default` gives a loopback service on an
/// ephemeral port with generous limits.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the job queue (0 = [`nshot_par::num_threads`]).
    pub workers: usize,
    /// Job-queue capacity; a full queue rejects with 429.
    pub queue_cap: usize,
    /// Per-request wall-clock budget in ms (0 = unlimited).
    pub timeout_ms: u64,
    /// Whole-response cache entry cap (0 disables the cache).
    pub cache_cap: usize,
    /// Persistent artifact store directory (`None` = in-RAM caching only).
    /// When set, the response cache is warmed from the store at bind time
    /// and cache fills are persisted write-behind on a dedicated thread,
    /// so the request path never blocks on fsync.
    pub store_dir: Option<PathBuf>,
    /// Warm the response cache at bind time from this store directory
    /// *without becoming a writer*: a read-only segment scan that never
    /// truncates, prunes or creates segments, so any number of processes
    /// (e.g. every backend of a shard topology) can warm from one shared
    /// directory concurrently. Ignored when `store_dir` is set (a writer
    /// already warms from its own directory).
    pub warm_dir: Option<PathBuf>,
    /// Fsync policy for the artifact store (ignored without `store_dir`).
    pub store_fsync: FsyncPolicy,
    /// Slow-request threshold in ms (0 disables): any request whose
    /// service time exceeds it is logged to stderr with its per-stage
    /// timings, counted in `nshot_slow_requests_total`, and recorded as a
    /// flight-recorder event.
    pub slow_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_cap: 64,
            timeout_ms: 30_000,
            cache_cap: 1024,
            store_dir: None,
            warm_dir: None,
            store_fsync: FsyncPolicy::default(),
            slow_ms: 1000,
        }
    }
}

/// The service's metric handles, backed by a **per-server**
/// [`Registry`] so two servers in one test process don't pollute each
/// other's counters. The registry itself is kept for the `metrics`
/// exposition.
struct Counters {
    registry: Registry,
    requests: Arc<Counter>,
    synth_requests: Arc<Counter>,
    verify_requests: Arc<Counter>,
    ok: Arc<Counter>,
    client_errors: Arc<Counter>,
    server_errors: Arc<Counter>,
    rejects: Arc<Counter>,
    timeouts: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_entries: Arc<Gauge>,
    cache_evictions: Arc<Counter>,
    cache_warmed: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queue_capacity: Arc<Gauge>,
    queue_high_water: Arc<Gauge>,
    slow_requests: Arc<Counter>,
    latency: Arc<AtomicHistogram>,
}

impl Counters {
    fn new() -> Counters {
        let registry = Registry::new();
        let requests = registry.counter("nshot_requests_total");
        let synth_requests = registry.counter("nshot_synth_requests_total");
        let verify_requests = registry.counter("nshot_verify_requests_total");
        let ok = registry.counter("nshot_responses_total{outcome=\"ok\"}");
        let client_errors = registry.counter("nshot_responses_total{outcome=\"client_error\"}");
        let server_errors = registry.counter("nshot_responses_total{outcome=\"server_error\"}");
        let rejects = registry.counter("nshot_responses_total{outcome=\"rejected\"}");
        let timeouts = registry.counter("nshot_responses_total{outcome=\"timeout\"}");
        let cache_hits = registry.counter("nshot_response_cache_hits_total");
        let cache_misses = registry.counter("nshot_response_cache_misses_total");
        let cache_entries = registry.gauge("nshot_response_cache_entries");
        let cache_evictions = registry.counter("nshot_response_cache_evictions_total");
        let cache_warmed = registry.counter("nshot_response_cache_warmed_total");
        let queue_depth = registry.gauge("nshot_queue_depth");
        let queue_capacity = registry.gauge("nshot_queue_capacity");
        let queue_high_water = registry.gauge("nshot_queue_high_water");
        let slow_requests = registry.counter("nshot_slow_requests_total");
        let latency = registry.histogram("nshot_request_duration_us");
        Counters {
            registry,
            requests,
            synth_requests,
            verify_requests,
            ok,
            client_errors,
            server_errors,
            rejects,
            timeouts,
            cache_hits,
            cache_misses,
            cache_entries,
            cache_evictions,
            cache_warmed,
            queue_depth,
            queue_capacity,
            queue_high_water,
            slow_requests,
            latency,
        }
    }
}

/// A queueable unit of work: the two pipeline-running ops share the queue,
/// the workers, the deadline plumbing and the response cache.
enum Work {
    Synth(SynthRequest),
    Verify(VerifyRequest),
}

impl Work {
    /// The canonical cache key (each op has its own namespace inside the
    /// shared `request_key` encoding).
    fn cache_key(&self) -> String {
        match self {
            Work::Synth(s) => s.cache_key(),
            Work::Verify(v) => v.cache_key(),
        }
    }

    /// Run the work to completion under the deadline.
    fn process(&self, deadline: &Deadline) -> Response {
        match self {
            Work::Synth(s) => process_synth(s, deadline),
            Work::Verify(v) => process_verify(v, deadline),
        }
    }
}

/// One queued job: the work, its deadline, its trace id, and the channel
/// the worker answers on (response + per-stage timings).
struct Job {
    work: Work,
    deadline: Deadline,
    trace_id: u64,
    reply: mpsc::Sender<(Response, StageTimings)>,
}

/// Run one job to completion (the worker pool's `run` closure). Executes
/// inside [`nshot_obs::with_request`], so pipeline spans (including those
/// recorded on `par_map` worker threads) are attributed to the job's trace
/// id and come back as its per-stage timings.
fn run_worker_job(job: Job) {
    let (response, timings) = nshot_obs::with_request(job.trace_id, || {
        if job.deadline.expired() {
            Response::error(504, "deadline exceeded while queued")
        } else {
            job.work.process(&job.deadline)
        }
    });
    // A dropped receiver just means the client hung up mid-request.
    let _ = job.reply.send((response, timings));
}

/// One cacheable response in both renderings: the deterministic JSON
/// field string (served *verbatim* on NDJSON connections — what the
/// byte-identity tests compare against direct library calls) and the
/// structured body the binary path streams out as `FIELD` records and
/// the store persists as its version-2 value. Kept behind an `Arc` so a
/// cache hit clones a pointer, not a netlist.
struct CachedResponse {
    code: u16,
    status: &'static str,
    fields: String,
    body: Vec<(String, Json)>,
}

impl CachedResponse {
    fn from_response(r: Response) -> CachedResponse {
        let fields = r.deterministic_fields();
        CachedResponse {
            code: r.code,
            status: r.status,
            fields,
            body: r.body,
        }
    }

    /// Rebuild from a legacy (version-1) store record: the stored string
    /// is kept verbatim as the JSON rendering — byte identity with what
    /// the old release served — and re-parsed once for the structured
    /// body the binary path needs. `None` means the record is foreign.
    fn from_legacy_fields(fields: String) -> Option<CachedResponse> {
        let parsed = json::parse(&format!("{{{fields}}}")).ok()?;
        let Json::Obj(pairs) = parsed else { return None };
        let mut code = None;
        let mut status = None;
        let mut body = Vec::new();
        for (k, v) in pairs {
            match k.as_str() {
                "code" => code = v.as_u64(),
                "status" => {
                    status = match v.as_str() {
                        Some("ok") => Some("ok"),
                        Some("error") => Some("error"),
                        Some("rejected") => Some("rejected"),
                        _ => None,
                    }
                }
                _ => body.push((k, v)),
            }
        }
        Some(CachedResponse {
            code: u16::try_from(code?).ok()?,
            status: status?,
            fields,
            body,
        })
    }

    /// Decode one persisted record into a cache entry, by the payload
    /// version the store recovered it at. `None` (foreign or damaged
    /// record) means skip — never serve.
    fn from_store_record(version: u32, value: Vec<u8>) -> Option<CachedResponse> {
        if version == RESPONSE_STORE_VERSION {
            let r = wirecodec::decode_response_value(&value).ok()?;
            Some(CachedResponse::from_response(r))
        } else {
            String::from_utf8(value)
                .ok()
                .and_then(CachedResponse::from_legacy_fields)
        }
    }

    /// The version-2 store value for this response.
    fn store_value(&self) -> Vec<u8> {
        wirecodec::encode_response_value(self.code, self.status, &self.body)
    }
}

/// State shared by the connection handlers and the shutdown path. The
/// queue/worker/drain plumbing lives in the embedded [`WorkerPool`].
struct Shared {
    config: ServerConfig,
    started: Instant,
    pool: WorkerPool<Job>,
    cache: Mutex<BoundedCache<String, Arc<CachedResponse>>>,
    counters: Counters,
    /// Write-behind channel to the store thread (`None` when no store is
    /// configured). Taken — dropping the sender — at drain time, which is
    /// what tells the store thread to flush and exit.
    persist: Mutex<Option<mpsc::Sender<(String, Arc<CachedResponse>)>>>,
}

impl Shared {
    fn count_code(&self, code: u16) {
        match code {
            200 => self.counters.ok.inc(),
            429 | 503 => self.counters.rejects.inc(),
            504 => self.counters.timeouts.inc(),
            400..=499 => self.counters.client_errors.inc(),
            _ => self.counters.server_errors.inc(),
        };
    }

    /// Refresh the gauges that mirror live data structures (queue, caches).
    fn refresh_gauges(&self) {
        let c = &self.counters;
        c.queue_depth.set(self.pool.queue_len() as u64);
        c.queue_capacity.set(self.pool.queue_capacity() as u64);
        c.queue_high_water.set(self.pool.queue_high_water() as u64);
        let (cache_len, cache_evictions) = {
            let cache = self.cache.lock().expect("cache poisoned");
            (cache.len(), cache.evictions())
        };
        c.cache_entries.set(cache_len as u64);
        c.cache_evictions.store(cache_evictions);
    }

    /// The Prometheus text exposition: this server's registry followed by
    /// the process-global one (pipeline-stage histograms, espresso-cache
    /// counters).
    fn metrics_text(&self) -> String {
        self.refresh_gauges();
        let mut text = self.counters.registry.render_prometheus();
        text.push_str(&Registry::global().render_prometheus());
        text
    }

    /// The `metrics` response: the exposition rides inside the NDJSON
    /// envelope as the `exposition` string field.
    fn metrics_response(&self) -> Response {
        Response::ok(vec![(
            "exposition".into(),
            Json::Str(self.metrics_text()),
        )])
    }

    /// The deterministic stats body (counter snapshot). The espresso-cache
    /// numbers come from the process-global registry — the same series the
    /// `metrics` op exposes — not from a private side channel.
    fn stats_response(&self) -> Response {
        let c = &self.counters;
        let latency = c.latency.snapshot();
        let (cache_len, cache_evictions) = {
            let cache = self.cache.lock().expect("cache poisoned");
            (cache.len(), cache.evictions())
        };
        let global = Registry::global();
        let num = |n: u64| Json::Num(n as f64);
        Response::ok(vec![
            ("uptime_ms".into(), num(self.started.elapsed().as_millis() as u64)),
            ("requests".into(), num(c.requests.get())),
            ("synth_requests".into(), num(c.synth_requests.get())),
            ("verify_requests".into(), num(c.verify_requests.get())),
            ("ok".into(), num(c.ok.get())),
            ("client_errors".into(), num(c.client_errors.get())),
            ("server_errors".into(), num(c.server_errors.get())),
            ("rejects".into(), num(c.rejects.get())),
            ("timeouts".into(), num(c.timeouts.get())),
            (
                "queue".into(),
                Json::Obj(vec![
                    ("depth".into(), Json::Num(self.pool.queue_len() as f64)),
                    (
                        "capacity".into(),
                        Json::Num(self.pool.queue_capacity() as f64),
                    ),
                    (
                        "high_water".into(),
                        Json::Num(self.pool.queue_high_water() as f64),
                    ),
                ]),
            ),
            (
                "response_cache".into(),
                Json::Obj(vec![
                    ("hits".into(), num(c.cache_hits.get())),
                    ("misses".into(), num(c.cache_misses.get())),
                    ("entries".into(), Json::Num(cache_len as f64)),
                    ("evictions".into(), num(cache_evictions)),
                ]),
            ),
            (
                "espresso_cache".into(),
                Json::Obj(vec![
                    (
                        "hits".into(),
                        num(global.counter_value("nshot_espresso_cache_hits_total")),
                    ),
                    (
                        "misses".into(),
                        num(global.counter_value("nshot_espresso_cache_misses_total")),
                    ),
                    (
                        "evictions".into(),
                        num(global.counter_value("nshot_espresso_cache_evictions_total")),
                    ),
                    (
                        "entries".into(),
                        num(global.gauge_value("nshot_espresso_cache_entries")),
                    ),
                ]),
            ),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("count".into(), num(latency.count())),
                    ("p50".into(), num(latency.p50_us())),
                    ("p99".into(), num(latency.p99_us())),
                    ("mean".into(), num(latency.mean_us())),
                    ("max".into(), num(latency.max_us())),
                    (
                        "buckets".into(),
                        Json::Arr(
                            latency
                                .nonzero_buckets()
                                .into_iter()
                                .map(|(lo, hi, n)| {
                                    Json::Arr(vec![
                                        Json::Num(lo as f64),
                                        Json::Num(hi as f64),
                                        Json::Num(n as f64),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Close admission and wait for queued + in-flight jobs to finish,
    /// then release the store thread (every job's cache fill has been
    /// sent by the time the workers are idle, so dropping the sender here
    /// loses nothing).
    fn drain(&self) {
        self.pool.drain();
        self.persist.lock().expect("persist poisoned").take();
    }

    /// The `hello` negotiation ack: echoes the agreed format so clients
    /// can assert on it, plus the wire version a binary connection speaks
    /// after the upgrade.
    fn hello_response(binary: bool) -> Response {
        Response::ok(vec![
            (
                "format".into(),
                Json::Str(if binary { "binary" } else { "json" }.into()),
            ),
            (
                "wire_version".into(),
                Json::Num(f64::from(nshot_wire::WIRE_VERSION)),
            ),
        ])
    }

    /// Dispatch one validated request — the op switchboard shared by the
    /// NDJSON and binary paths, so the two framings cannot drift. Returns
    /// the response, whether the cache served it, the pipeline timings,
    /// and whether the service must stop once the ack is flushed.
    fn dispatch(
        &self,
        request: Request,
        trace_id: u64,
    ) -> (Arc<CachedResponse>, bool, StageTimings, bool) {
        let inline = |r: Response| {
            (
                Arc::new(CachedResponse::from_response(r)),
                false,
                StageTimings::default(),
                false,
            )
        };
        match request {
            Request::Ping => inline(Response::ok(vec![("pong".into(), Json::Bool(true))])),
            Request::Stats => inline(self.stats_response()),
            Request::Metrics => inline(self.metrics_response()),
            Request::Hello { binary } => inline(Self::hello_response(binary)),
            Request::Shutdown => {
                self.drain();
                let r = Response::ok(vec![
                    ("shutdown".into(), Json::Bool(true)),
                    ("drained".into(), Json::Bool(true)),
                    (
                        "served".into(),
                        Json::Num(self.counters.requests.get() as f64),
                    ),
                ]);
                (
                    Arc::new(CachedResponse::from_response(r)),
                    false,
                    StageTimings::default(),
                    true,
                )
            }
            Request::Synth(synth) => {
                let (resp, cached, timings) = run_job(self, Work::Synth(synth), trace_id);
                (resp, cached, timings, false)
            }
            Request::Verify(verify) => {
                let (resp, cached, timings) = run_job(self, Work::Verify(verify), trace_id);
                (resp, cached, timings, false)
            }
        }
    }

    /// Slow-request log: anything past the threshold is triageable from
    /// stderr (and the flight recorder) without a trace sink.
    fn note_slow(
        &self,
        code: u16,
        cached: bool,
        service_us: u64,
        trace_id: u64,
        timing_json: &str,
    ) {
        let slow_ms = self.config.slow_ms;
        if slow_ms == 0 || service_us <= slow_ms.saturating_mul(1000) {
            return;
        }
        self.counters.slow_requests.inc();
        let timing = if timing_json.is_empty() {
            "{}"
        } else {
            timing_json
        };
        eprintln!(
            "nshot-serve: slow request trace={trace_id} code={code} \
             cached={cached} service_us={service_us} timing={timing}"
        );
        nshot_obs::event("slow_request", || {
            format!(
                "trace={trace_id} code={code} cached={cached} \
                 service_us={service_us} timing={timing}"
            )
        });
    }
}

/// Whether a response prefix may be served from / stored in the cache:
/// only deterministic outcomes (success, spec parse errors, synthesis
/// rejections) — never backpressure or deadline artifacts.
fn cacheable(code: u16) -> bool {
    matches!(code, 200 | 400 | 422)
}

/// Handle one queued request (synth or verify) end to end (cache → queue →
/// worker → cache fill). Returns the response, whether it was served from
/// cache, and the per-stage timings (empty for cache hits and rejections —
/// no pipeline ran).
fn run_job(shared: &Shared, work: Work, trace_id: u64) -> (Arc<CachedResponse>, bool, StageTimings) {
    match &work {
        Work::Synth(_) => shared.counters.synth_requests.inc(),
        Work::Verify(_) => shared.counters.verify_requests.inc(),
    }

    // The key feeds both the in-RAM cache and the persistent store (same
    // canonical encoding, see `nshot_logic::request_key`).
    let key = (shared.config.cache_cap > 0 || shared.config.store_dir.is_some())
        .then(|| work.cache_key());
    if shared.config.cache_cap > 0 {
        if let Some(key) = &key {
            let mut cache = shared.cache.lock().expect("cache poisoned");
            if let Some(hit) = cache.get(key) {
                let resp = Arc::clone(hit);
                drop(cache);
                shared.counters.cache_hits.inc();
                return (resp, true, StageTimings::default());
            }
            shared.counters.cache_misses.inc();
        }
    }

    let deadline = Deadline::after_ms(shared.config.timeout_ms);
    let (tx, rx) = mpsc::channel();
    let job = Job {
        work,
        deadline,
        trace_id,
        reply: tx,
    };
    let (mut response, timings) = match shared.pool.try_submit(job) {
        Ok(()) => rx.recv().unwrap_or_else(|_| {
            // Workers only exit after the queue is closed *and* drained, so
            // an accepted job always gets an answer; this is a last-resort
            // guard, not an expected path.
            (
                Response::error(500, "worker dropped the job"),
                StageTimings::default(),
            )
        }),
        Err(PushError::Full(depth)) => (
            Response::rejected(429, "queue full", Some(depth)),
            StageTimings::default(),
        ),
        Err(PushError::Closed) => (
            Response::rejected(503, "shutting down", None),
            StageTimings::default(),
        ),
    };

    // A deadline kill is triageable from the response alone: the stages
    // that *did* finish before the deadline ride along in the body. Safe
    // to add here — 504 is never cacheable, so the deterministic prefix
    // of cached responses is untouched.
    if response.code == 504 && !timings.is_empty() {
        let partial: Vec<(String, Json)> = timings
            .entries()
            .iter()
            .map(|&(stage, _, us)| (stage.name().to_string(), Json::Num(us as f64)))
            .collect();
        response
            .body
            .push(("partial_timing".into(), Json::Obj(partial)));
    }

    let resp = Arc::new(CachedResponse::from_response(response));
    if cacheable(resp.code) {
        if let Some(key) = key {
            // Write-behind: hand the record to the store thread before the
            // cache fill; the request path never waits on disk. A closed
            // channel (store thread released at drain) just skips. The
            // store thread owns the binary encoding, so that cost is off
            // the request path too.
            if let Some(tx) = shared.persist.lock().expect("persist poisoned").as_ref() {
                let _ = tx.send((key.clone(), Arc::clone(&resp)));
            }
            if shared.config.cache_cap > 0 {
                shared
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(key, Arc::clone(&resp));
            }
        }
    }
    (resp, false, timings)
}

impl LineHandler for Shared {
    /// Serve one request line end to end: parse, dispatch, count, stamp
    /// the per-call fields, render. The runtime owns framing and sockets.
    fn handle_line(&self, raw: Vec<u8>) -> LineReply {
        let t0 = Instant::now();
        let trace_id = nshot_obs::next_trace_id();
        self.counters.requests.inc();

        // Non-UTF-8 bytes are a protocol error, answered — not a panic, not
        // a dropped connection.
        let parsed = match String::from_utf8(raw) {
            Ok(text) => protocol::parse_request(text.trim_end_matches('\r')),
            Err(_) => Err((Json::Null, "request is not valid utf-8".into())),
        };

        let (id, resp, cached, timings, shutdown, upgrade) = match parsed {
            Err((id, message)) => (
                id,
                Arc::new(CachedResponse::from_response(Response::error(400, message))),
                false,
                StageTimings::default(),
                false,
                false,
            ),
            Ok(Envelope { id, request }) => {
                let upgrade = matches!(request, Request::Hello { binary: true });
                let (resp, cached, timings, shutdown) = self.dispatch(request, trace_id);
                (id, resp, cached, timings, shutdown, upgrade)
            }
        };

        self.count_code(resp.code);
        let service_us = t0.elapsed().as_micros() as u64;
        self.counters.latency.record(service_us);

        let timing_json = if timings.is_empty() {
            String::new()
        } else {
            timings.to_json()
        };
        self.note_slow(resp.code, cached, service_us, trace_id, &timing_json);

        let line = protocol::render_response(
            &id,
            &resp.fields,
            cached,
            service_us,
            trace_id,
            &timing_json,
        );
        LineReply {
            line,
            shutdown,
            upgrade,
        }
    }

    /// Serve one binary request frame after the `hello` upgrade: decode,
    /// dispatch through the same switchboard as the NDJSON path, stream
    /// the response back as head/field/end frames. A structurally damaged
    /// payload (already counted in `nshot_wire_decode_errors_total`)
    /// closes the connection — its framing can no longer be trusted; a
    /// well-formed frame carrying an invalid request is answered with a
    /// 400 stream, exactly like a bad JSON line.
    fn handle_frame(&self, frame: nshot_wire::Frame) -> Option<FrameReply> {
        let t0 = Instant::now();
        let trace_id = nshot_obs::next_trace_id();
        self.counters.requests.inc();

        let refused = |id: Json, message: String| {
            (
                id,
                Arc::new(CachedResponse::from_response(Response::error(400, message))),
                false,
                StageTimings::default(),
                false,
            )
        };
        let (id, resp, cached, timings, shutdown) = if frame.tag != nshot_wire::tags::REQUEST {
            // A valid frame of the wrong kind is an answerable protocol
            // error, like a JSON line with an unknown op.
            refused(Json::Null, format!("expected a request frame, got tag {}", frame.tag))
        } else {
            match wirecodec::decode_request(&frame.payload) {
                Err(wirecodec::RequestDecodeError::Frame(_)) => return None,
                Err(wirecodec::RequestDecodeError::Invalid { id, message }) => {
                    refused(id, message)
                }
                Ok(Envelope { id, request }) => {
                    let (resp, cached, timings, shutdown) = self.dispatch(request, trace_id);
                    (id, resp, cached, timings, shutdown)
                }
            }
        };

        self.count_code(resp.code);
        let service_us = t0.elapsed().as_micros() as u64;
        self.counters.latency.record(service_us);

        let timing_json = if timings.is_empty() {
            String::new()
        } else {
            timings.to_json()
        };
        self.note_slow(resp.code, cached, service_us, trace_id, &timing_json);

        let frames = wirecodec::encode_response_frames(
            &id,
            resp.code,
            resp.status,
            &resp.body,
            cached,
            service_us,
            trace_id,
            &timing_json,
        );
        Some(FrameReply { frames, shutdown })
    }
}

/// What a gracefully stopped server saw over its lifetime; returned by
/// [`Server::wait`] so the `serve` bin can report instead of draining
/// silently.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Total request lines served (all ops).
    pub served: u64,
    /// Deepest the job queue ever got.
    pub queue_high_water: u64,
    /// Final Prometheus exposition (per-server + global registries).
    pub metrics: String,
    /// Final artifact-store summary (`None` when no store was configured).
    pub store: Option<StoreReport>,
}

/// A running service. Dropping the handle does **not** stop the server;
/// send a `shutdown` request or call [`Server::shutdown`], then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    line_server: TcpLineServer,
    store_thread: Option<std::thread::JoinHandle<StoreReport>>,
}

impl Server {
    /// Bind and start: workers first, then the accept loop.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        // Force-register the pipeline-stage histograms and the wire
        // decode-error counter so a `metrics` scrape sees every series
        // (with zero counts) from the first request on.
        let _ = nshot_obs::stage_histograms();
        let _ = nshot_wire::decode_errors();
        let workers = if config.workers == 0 {
            nshot_par::num_threads()
        } else {
            config.workers
        };

        // Open the persistent store (recovering whatever survives on
        // disk) before serving: warm-start records go straight into the
        // response cache, so the first request for a stored spec is a
        // cache hit, not a recompilation.
        let mut store = match &config.store_dir {
            None => None,
            Some(dir) => {
                let mut cfg = StoreConfig::new(dir);
                cfg.fsync = config.store_fsync;
                cfg.value_version = RESPONSE_STORE_VERSION;
                cfg.legacy_versions = RESPONSE_STORE_LEGACY.to_vec();
                Some(Store::open(cfg)?)
            }
        };

        let counters = Counters::new();
        let cache = Mutex::new(BoundedCache::new(config.cache_cap.max(2)));
        if let Some(store) = store.as_mut() {
            if config.cache_cap > 0 {
                let mut guard = cache.lock().expect("cache poisoned");
                for (key, version, value) in store.entries_versioned() {
                    // Binary (version-2) records and legacy field strings
                    // both warm the cache; a record neither decodes as is
                    // foreign and skipped.
                    if let Some(resp) = CachedResponse::from_store_record(version, value) {
                        guard.insert(key, Arc::new(resp));
                        counters.cache_warmed.inc();
                    }
                }
            }
        } else if let Some(dir) = &config.warm_dir {
            // Shared-warm mode (shard backends): read-only scan, no writer
            // state, safe for N processes on one directory.
            if config.cache_cap > 0 {
                let mut want = vec![RESPONSE_STORE_VERSION];
                want.extend_from_slice(RESPONSE_STORE_LEGACY);
                let mut guard = cache.lock().expect("cache poisoned");
                for (key, version, value) in nshot_store::read_entries_with(dir, &want)? {
                    if let Some(resp) = CachedResponse::from_store_record(version, value) {
                        guard.insert(key, Arc::new(resp));
                        counters.cache_warmed.inc();
                    }
                }
            }
        }

        let (persist, store_thread) = match store {
            None => (None, None),
            Some(mut store) => {
                let (tx, rx) = mpsc::channel::<(String, Arc<CachedResponse>)>();
                let handle = std::thread::Builder::new()
                    .name("nshot-store".into())
                    .spawn(move || {
                        // Write-behind loop: exits when every sender is
                        // dropped (drain), then flushes and reports. The
                        // binary store value is encoded here, off the
                        // request path.
                        while let Ok((key, resp)) = rx.recv() {
                            let _ = store.put(&key, &resp.store_value());
                        }
                        let _ = store.flush();
                        store.report()
                    })
                    .expect("spawn store thread");
                (Some(tx), Some(handle))
            }
        };

        let addr = config.addr.clone();
        let shared = Arc::new(Shared {
            pool: WorkerPool::new("nshot-worker", workers, config.queue_cap, run_worker_job),
            cache,
            counters,
            started: Instant::now(),
            persist: Mutex::new(persist),
            config,
        });

        let line_server = TcpLineServer::bind(&addr, Arc::clone(&shared))?;
        Ok(Server {
            shared,
            line_server,
            store_thread,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.line_server.local_addr()
    }

    /// Programmatic graceful shutdown: drain jobs, stop the accept loop.
    pub fn shutdown(&self) {
        self.shared.drain();
        self.line_server.stop();
    }

    /// Block until the service has shut down (via a `shutdown` request or
    /// [`Server::shutdown`]) and every worker has exited, then report what
    /// it saw.
    pub fn wait(self) -> ShutdownReport {
        self.line_server.join();
        self.shared.pool.join();
        // The workers are gone and drain() dropped the persist sender, so
        // the store thread is already flushing its tail; joining it here
        // makes the returned report (and the on-disk state) final.
        let store = self.store_thread.and_then(|h| h.join().ok());
        ShutdownReport {
            served: self.shared.counters.requests.get(),
            queue_high_water: self.shared.pool.queue_high_water() as u64,
            metrics: self.shared.metrics_text(),
            store,
        }
    }
}
