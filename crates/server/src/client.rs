//! Minimal NDJSON-over-TCP client: connect, line framing, one-request/
//! one-response roundtrips, IO timeouts.
//!
//! One implementation shared by everything that talks to the service —
//! the load generator (`loadgen`), the shard front's proxy path and the
//! front's metrics/shutdown fan-out — instead of each hand-rolling its own
//! `BufReader` + `write_all` dance.
//!
//! A client can also negotiate the binary wire format
//! ([`Client::upgrade_binary`]): after the `hello` ack the connection
//! carries `nshot-wire` frames, requests encoded by
//! [`crate::wirecodec::encode_request`] and responses read back as the
//! same object shape the NDJSON line parses to.

use crate::json::{self, Json};
use crate::protocol::Envelope;
use crate::wirecodec;
use nshot_wire::WireError;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A connected NDJSON client. One request line out, one response line in,
/// strictly in order (the protocol answers in order per connection).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect with the OS default connect timeout.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`io::Error`].
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connect with an explicit connect timeout.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`io::Error`] (including timeout).
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        Self::from_stream(TcpStream::connect_timeout(&addr, timeout)?)
    }

    fn from_stream(writer: TcpStream) -> io::Result<Client> {
        // Request/response exchanges are latency-bound; Nagle + delayed-ACK
        // would add ~40 ms to every roundtrip whose write spans segments.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Set (or clear, with `None`) the per-operation read/write timeout.
    /// A timed-out roundtrip leaves the connection in an unknown framing
    /// state — drop the client and reconnect.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`io::Error`].
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    /// Send one raw line (newline appended here) and read one response
    /// line (trailing newline/`\r` stripped).
    ///
    /// # Errors
    ///
    /// IO failures, plus [`io::ErrorKind::UnexpectedEof`] when the peer
    /// closed before answering.
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut raw = String::new();
        self.reader.read_line(&mut raw)?;
        if raw.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a response line",
            ));
        }
        while raw.ends_with('\n') || raw.ends_with('\r') {
            raw.pop();
        }
        Ok(raw)
    }

    /// [`roundtrip`](Self::roundtrip), then parse the response as JSON.
    ///
    /// # Errors
    ///
    /// A human-readable string for IO or JSON failures (the callers —
    /// harnesses and fan-out paths — report, they do not match on kinds).
    pub fn roundtrip_json(&mut self, line: &str) -> Result<Json, String> {
        let raw = self.roundtrip(line).map_err(|e| format!("io: {e}"))?;
        json::parse(&raw).map_err(|e| format!("bad response json ({e}): {raw}"))
    }

    /// Negotiate binary framing: send the `hello` line and check the ack.
    /// Every later exchange on this connection must use
    /// [`roundtrip_frame`](Self::roundtrip_frame) /
    /// [`roundtrip_binary`](Self::roundtrip_binary).
    ///
    /// # Errors
    ///
    /// IO failures, or [`io::ErrorKind::InvalidData`] when the server
    /// refuses the upgrade.
    pub fn upgrade_binary(&mut self) -> io::Result<()> {
        let raw = self.roundtrip(r#"{"op":"hello","format":"binary"}"#)?;
        if !raw.contains("\"code\":200") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("binary upgrade refused: {raw}"),
            ));
        }
        Ok(())
    }

    /// Send one pre-encoded request frame and read back the response
    /// frame stream, assembled into the same object shape
    /// [`roundtrip_json`](Self::roundtrip_json) returns. Only valid
    /// after [`upgrade_binary`](Self::upgrade_binary).
    ///
    /// # Errors
    ///
    /// IO failures; decode failures surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn roundtrip_frame(&mut self, frame: &[u8]) -> io::Result<Json> {
        self.writer.write_all(frame)?;
        self.writer.flush()?;
        wirecodec::read_response(&mut self.reader).map_err(wire_to_io)
    }

    /// Encode `env` and [`roundtrip_frame`](Self::roundtrip_frame) it.
    ///
    /// # Errors
    ///
    /// As `roundtrip_frame`, plus [`io::ErrorKind::InvalidData`] for a
    /// request that has no binary encoding (`hello`).
    pub fn roundtrip_binary(&mut self, env: &Envelope) -> io::Result<Json> {
        let frame = wirecodec::encode_request(env).map_err(wire_to_io)?;
        self.roundtrip_frame(&frame)
    }
}

fn wire_to_io(e: WireError) -> io::Error {
    match e {
        WireError::Io(kind) => io::Error::new(kind, "binary roundtrip failed"),
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// One-shot request on a fresh connection (stats scrapes, control ops).
///
/// # Errors
///
/// A human-readable string for connect, IO or JSON failures.
pub fn request(addr: SocketAddr, line: &str) -> Result<Json, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client.roundtrip_json(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{LineHandler, LineReply, TcpLineServer};
    use std::sync::Arc;

    struct Upper;
    impl LineHandler for Upper {
        fn handle_line(&self, raw: Vec<u8>) -> LineReply {
            LineReply::reply(String::from_utf8_lossy(&raw).to_uppercase())
        }
    }

    #[test]
    fn roundtrips_in_order() {
        let server = TcpLineServer::bind("127.0.0.1:0", Arc::new(Upper)).expect("bind");
        let mut c = Client::connect(server.local_addr()).expect("connect");
        assert_eq!(c.roundtrip("abc").expect("rt"), "ABC");
        assert_eq!(c.roundtrip("def").expect("rt"), "DEF");
        server.stop();
        server.join();
    }

    /// Speaks just enough of the binary protocol to exercise the client
    /// side of the upgrade without a full synthesis server.
    struct BinaryPong;
    impl LineHandler for BinaryPong {
        fn handle_line(&self, _raw: Vec<u8>) -> LineReply {
            crate::runtime::LineReply {
                line: "{\"id\":null,\"code\":200,\"status\":\"ok\"}".into(),
                shutdown: false,
                upgrade: true,
            }
        }

        fn handle_frame(&self, frame: nshot_wire::Frame) -> Option<crate::runtime::FrameReply> {
            let env = wirecodec::decode_request(&frame.payload).ok()?;
            let frames = wirecodec::encode_response_frames(
                &env.id,
                200,
                "ok",
                &[("pong".to_owned(), Json::Bool(true))],
                false,
                5,
                9,
                "",
            );
            Some(crate::runtime::FrameReply {
                frames,
                shutdown: false,
            })
        }
    }

    #[test]
    fn binary_upgrade_and_roundtrip() {
        use crate::protocol::{Envelope, Request};
        let server = TcpLineServer::bind("127.0.0.1:0", Arc::new(BinaryPong)).expect("bind");
        let mut c = Client::connect(server.local_addr()).expect("connect");
        c.upgrade_binary().expect("upgrade");
        let env = Envelope {
            id: Json::Num(42.0),
            request: Request::Ping,
        };
        let obj = c.roundtrip_binary(&env).expect("roundtrip");
        assert_eq!(obj.get("id").unwrap().as_u64(), Some(42));
        assert_eq!(obj.get("code").unwrap().as_u64(), Some(200));
        assert_eq!(obj.get("pong").unwrap().as_bool(), Some(true));
        server.stop();
        server.join();
    }

    #[test]
    fn eof_is_an_error_not_an_empty_line() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let accept = std::thread::spawn(move || drop(listener.accept()));
        let mut c = Client::connect(addr).expect("connect");
        accept.join().expect("join");
        let err = c.roundtrip("{\"op\":\"ping\"}");
        assert!(err.is_err(), "EOF must surface as an error");
    }
}
