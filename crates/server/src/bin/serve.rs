//! `nshot-serve` — run the N-SHOT synthesis service.
//!
//! ```text
//! nshot-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!             [--timeout-ms N] [--cache-cap N] [--port-file PATH]
//!             [--store DIR] [--store-fsync always|batch|never]
//!             [--warm-store DIR] [--slow-ms N]
//! ```
//!
//! Defaults: loopback on an ephemeral port, workers = available
//! parallelism, queue 64, timeout 30 s, cache 1024 entries, no store,
//! slow-request log at 1000 ms (`--slow-ms 0` disables). Once the
//! listener is accepting, a single machine-readable `ready ADDR` line is
//! printed on stdout (and the address written to `--port-file` when
//! given) — parents and scripts wait for that line instead of polling the
//! file. With `--store` the response cache is warmed from the persistent
//! artifact store at startup and every cache fill is persisted
//! write-behind, so a restarted service answers previously seen specs
//! from disk without recompiling. `--warm-store` warms from a directory
//! *without writing to it* (a read-only segment scan) — the mode shard
//! backends use so N processes can share one store. The process exits
//! after a graceful `{"op":"shutdown"}` request has drained all jobs,
//! printing the final store summary.

use nshot_server::{FsyncPolicy, Server, ServerConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("nshot-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut port_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_string())?;
            }
            "--queue-cap" => {
                config.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap must be an integer".to_string())?;
            }
            "--timeout-ms" => {
                config.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms must be an integer".to_string())?;
            }
            "--cache-cap" => {
                config.cache_cap = value("--cache-cap")?
                    .parse()
                    .map_err(|_| "--cache-cap must be an integer".to_string())?;
            }
            "--slow-ms" => {
                config.slow_ms = value("--slow-ms")?
                    .parse()
                    .map_err(|_| "--slow-ms must be an integer".to_string())?;
            }
            "--port-file" => port_file = Some(value("--port-file")?),
            "--store" => config.store_dir = Some(value("--store")?.into()),
            "--warm-store" => config.warm_dir = Some(value("--warm-store")?.into()),
            "--store-fsync" => {
                config.store_fsync = FsyncPolicy::parse(&value("--store-fsync")?)?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: nshot-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] \
                     [--timeout-ms N] [--cache-cap N] [--port-file PATH] \
                     [--store DIR] [--store-fsync always|batch|never] \
                     [--warm-store DIR] [--slow-ms N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    let server = Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{addr}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    // The single machine-readable readiness line: everything a parent
    // needs (the listener is accepting, and where). Written after the
    // port file so a reader woken by this line finds the file complete.
    println!("ready {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let report = server.wait();
    // Flush any buffered NDJSON trace lines before reporting — a trace
    // that loses its tail on graceful shutdown is worse than none.
    nshot_obs::flush_trace();
    eprintln!(
        "nshot-serve: served {} requests, queue high-water {}",
        report.served, report.queue_high_water
    );
    if let Some(store) = &report.store {
        eprintln!("nshot-serve: store {store}");
    }
    eprintln!("nshot-serve: final metrics snapshot:");
    for line in report.metrics.lines() {
        eprintln!("  {line}");
    }
    println!("nshot-server: drained, bye");
    Ok(())
}
