//! `nshot-batch` — incremental batch compilation into the artifact store.
//!
//! ```text
//! nshot-batch --store DIR [--circuits a,b,c] [--manifest FILE]
//!             [--format blif|verilog|none] [--minimizer heuristic|exact|multi]
//!             [--trials N] [--share] [--fsync always|batch|never] [--force]
//! ```
//!
//! Compiles a set of specifications — benchmark-suite circuits by name
//! and/or a manifest file listing `.g`/SG spec paths, one per line — and
//! persists the responses into the store a subsequent
//! `nshot-serve --store DIR` warms its cache from. The run is
//! **incremental**: a spec whose artifact is already present (same
//! canonical `(options|spec)` key, valid record, current format version)
//! is skipped, so re-running after adding one circuit compiles only that
//! one. `--force` recompiles everything. Without `--circuits` and
//! `--manifest`, the whole 25-circuit suite is compiled.
//!
//! Responses are persisted for every deterministic outcome (success and
//! spec rejections alike — the same codes the server caches), so a known
//! -bad spec is not re-attempted on the next run. The exit summary prints
//! the compile tally and the store report; the exit code is non-zero only
//! for operational failures (bad flags, store I/O), not for specs that
//! fail synthesis.

use nshot_core::Minimizer;
use nshot_server::{
    process_synth, wirecodec, Deadline, Method, OutputFormat, SynthRequest,
    RESPONSE_STORE_LEGACY, RESPONSE_STORE_VERSION,
};
use nshot_store::{FsyncPolicy, Store, StoreConfig};
use std::process::ExitCode;

struct Options {
    store: String,
    circuits: Option<Vec<String>>,
    manifest: Option<String>,
    format: OutputFormat,
    minimizer: Minimizer,
    trials: usize,
    share: bool,
    fsync: FsyncPolicy,
    force: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = run(&args);
    // The batch tally and store summary above are the report; the trace
    // tail must not be lost behind them.
    nshot_obs::flush_trace();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("nshot-batch: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut store = None;
    let mut opts = Options {
        store: String::new(),
        circuits: None,
        manifest: None,
        format: OutputFormat::Blif,
        minimizer: Minimizer::Heuristic,
        trials: 0,
        share: false,
        fsync: FsyncPolicy::Batch,
        force: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--store" => store = Some(value("--store")?),
            "--circuits" => {
                opts.circuits =
                    Some(value("--circuits")?.split(',').map(str::to_owned).collect());
            }
            "--manifest" => opts.manifest = Some(value("--manifest")?),
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "blif" => OutputFormat::Blif,
                    "verilog" => OutputFormat::Verilog,
                    "none" => OutputFormat::None,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--minimizer" => {
                opts.minimizer = match value("--minimizer")?.as_str() {
                    "heuristic" => Minimizer::Heuristic,
                    "exact" => Minimizer::Exact,
                    "multi" => Minimizer::MultiOutput,
                    other => return Err(format!("unknown minimizer '{other}'")),
                };
            }
            "--trials" => {
                opts.trials = value("--trials")?
                    .parse()
                    .map_err(|_| "--trials must be an integer".to_string())?;
            }
            "--share" => opts.share = true,
            "--fsync" => opts.fsync = FsyncPolicy::parse(&value("--fsync")?)?,
            "--force" => opts.force = true,
            "--help" | "-h" => {
                println!(
                    "usage: nshot-batch --store DIR [--circuits a,b,c] [--manifest FILE] \
                     [--format blif|verilog|none] [--minimizer heuristic|exact|multi] \
                     [--trials N] [--share] [--fsync always|batch|never] [--force]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    opts.store = store.ok_or("--store DIR is required")?;
    Ok(opts)
}

/// The deterministic outcomes worth persisting — the same set the
/// server's response cache stores (success, spec parse errors, synthesis
/// rejections), never operational artifacts.
fn persistable(code: u16) -> bool {
    matches!(code, 200 | 400 | 422)
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_args(args)?;

    // The work list: named suite circuits and/or manifest spec files.
    let mut specs: Vec<(String, String)> = Vec::new();
    match (&opts.circuits, &opts.manifest) {
        (None, None) => {
            for b in nshot_benchmarks::suite() {
                specs.push((b.name.to_owned(), b.build().to_text()));
            }
        }
        (circuits, manifest) => {
            if let Some(names) = circuits {
                for n in names {
                    let b = nshot_benchmarks::by_name(n)
                        .ok_or_else(|| format!("unknown circuit '{n}'"))?;
                    specs.push((n.clone(), b.build().to_text()));
                }
            }
            if let Some(path) = manifest {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                for line in text.lines().map(str::trim) {
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    let spec = std::fs::read_to_string(line)
                        .map_err(|e| format!("{line}: {e}"))?;
                    specs.push((line.to_owned(), spec));
                }
            }
        }
    }

    let mut config = StoreConfig::new(&opts.store);
    config.fsync = opts.fsync;
    config.value_version = RESPONSE_STORE_VERSION;
    // A record persisted by an older release still counts as present for
    // the incremental skip — the server serves it byte-identically.
    config.legacy_versions = RESPONSE_STORE_LEGACY.to_vec();
    let mut store = Store::open(config).map_err(|e| format!("store {}: {e}", opts.store))?;
    let recovery = store.stats();
    if recovery.dropped_records > 0 || recovery.stale_records > 0 {
        eprintln!(
            "nshot-batch: store recovery: recovered {}, dropped {}, stale {}",
            recovery.recovered_records, recovery.dropped_records, recovery.stale_records
        );
    }

    let (mut compiled, mut cached, mut failed) = (0u64, 0u64, 0u64);
    for (name, spec) in &specs {
        let request = SynthRequest {
            spec: spec.clone(),
            method: Method::Nshot,
            minimizer: opts.minimizer,
            trials: opts.trials,
            format: opts.format,
            share: opts.share,
        };
        let key = request.cache_key();
        if !opts.force && store.contains(&key) {
            cached += 1;
            eprintln!("nshot-batch: {name}: cached");
            continue;
        }
        let response = process_synth(&request, &Deadline::unlimited());
        if persistable(response.code) {
            let value =
                wirecodec::encode_response_value(response.code, response.status, &response.body);
            store
                .put(&key, &value)
                .map_err(|e| format!("store put {name}: {e}"))?;
        }
        if response.code == 200 {
            compiled += 1;
            eprintln!("nshot-batch: {name}: compiled");
        } else {
            failed += 1;
            eprintln!("nshot-batch: {name}: failed (code {})", response.code);
        }
    }

    store.flush().map_err(|e| format!("store flush: {e}"))?;
    println!("nshot-batch: compiled {compiled}, cached {cached}, failed {failed}");
    println!("nshot-batch: store {}", store.report());
    Ok(())
}
