//! Request execution: one synthesis job in, one deterministic response out.
//!
//! This is the pure part of the service — no sockets, no queues. Everything
//! here is a function of the request (plus the deadline), so the whole
//! response prefix is cacheable and the loopback tests can compare it
//! byte-for-byte against direct library calls.
//!
//! Cancellation is **cooperative**: a job checks its deadline between
//! pipeline stages (parse → elaborate → synthesize → per-chunk Monte-Carlo)
//! and bails with a 504 as soon as it notices the budget is gone. A stage
//! in progress is never interrupted — the stages are the cancellation
//! granularity, which keeps every data structure valid and every partial
//! result discardable.

use crate::json::Json;
use crate::protocol::{Method, OutputFormat, Response, SynthRequest, VerifyRequest};
use nshot_core::{synthesize, NshotImplementation, SynthesisOptions};
use nshot_mc::{McConfig, Verdict};
use nshot_netlist::{DelayModel, Netlist};
use nshot_obs::Stage;
use nshot_sg::StateGraph;
use nshot_sim::{monte_carlo, ConformanceConfig, MonteCarloSummary};
use std::time::Instant;

/// Monte-Carlo trials run between two deadline checks.
const TRIAL_CHUNK: usize = 8;

/// A cooperative cancellation deadline (`None` = unlimited).
#[derive(Debug, Clone, Copy)]
pub struct Deadline(pub Option<Instant>);

impl Deadline {
    /// A deadline that never expires.
    pub fn unlimited() -> Self {
        Deadline(None)
    }

    /// A deadline `ms` milliseconds from now; the service convention
    /// `0 = unlimited` is interpreted here, in one place.
    pub fn after_ms(ms: u64) -> Self {
        if ms == 0 {
            Deadline(None)
        } else {
            Deadline(Some(
                Instant::now() + std::time::Duration::from_millis(ms),
            ))
        }
    }

    /// `true` once the wall clock has passed the deadline.
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }

    /// Check the budget between stages. The stage names are the same
    /// [`Stage`] vocabulary the spans use — cancellation and tracing share
    /// one set of pipeline boundaries.
    ///
    /// # Errors
    ///
    /// The 504 response naming the stage that found the deadline gone.
    fn check(&self, stage: &str) -> Result<(), Response> {
        if self.expired() {
            Err(Response::error(
                504,
                format!("deadline exceeded (noticed after {stage})"),
            ))
        } else {
            Ok(())
        }
    }
}

/// Parse a specification: `.g` STG text (detected by a `.graph` section,
/// as in the `assassin` CLI) or the SG text format.
///
/// # Errors
///
/// The parse/elaboration error message, for a 400 response.
pub fn load_spec(text: &str) -> Result<StateGraph, String> {
    if text.contains(".graph") {
        let stg = nshot_stg::parse_stg(text).map_err(|e| e.to_string())?;
        stg.elaborate().map_err(|e| e.to_string())
    } else {
        nshot_sg::parse_sg(text).map_err(|e| e.to_string())
    }
}

/// Render the requested netlist text.
fn netlist_text(netlist: &Netlist, format: OutputFormat) -> Option<Json> {
    match format {
        OutputFormat::Blif => Some(Json::Str(netlist.to_blif())),
        OutputFormat::Verilog => Some(Json::Str(netlist.to_verilog())),
        OutputFormat::None => None,
    }
}

/// Run `trials` Monte-Carlo conformance trials in deadline-checked chunks.
///
/// Chunking is invisible in the result: the per-trial seed schedule is
/// `trial_seed(base, i) = (base + i) · c`, so running chunk `[s, s+n)` with
/// the base seed advanced by `s` reproduces exactly the seeds a single
/// `monte_carlo(trials)` call would use, and the summaries fold the same
/// way (sums and first-failure).
///
/// # Errors
///
/// The 504 response when the deadline expires between chunks.
fn monte_carlo_chunked(
    sg: &StateGraph,
    imp: &NshotImplementation,
    trials: usize,
    deadline: &Deadline,
) -> Result<MonteCarloSummary, Response> {
    let base = ConformanceConfig::default();
    let mut done = 0;
    let mut clean = 0;
    let mut total_transitions = 0;
    let mut first_failure = None;
    while done < trials {
        deadline.check(Stage::MonteCarlo.name())?;
        let n = TRIAL_CHUNK.min(trials - done);
        let config = ConformanceConfig {
            seed: base.seed.wrapping_add(done as u64),
            ..base.clone()
        };
        let chunk = monte_carlo(sg, imp, &config, n);
        clean += chunk.clean_trials;
        total_transitions += chunk.total_transitions;
        if first_failure.is_none() {
            first_failure = chunk.first_failure;
        }
        done += n;
    }
    Ok(MonteCarloSummary {
        trials,
        clean_trials: clean,
        total_transitions,
        first_failure,
    })
}

/// Execute one synthesis request to completion (or deadline/error).
///
/// The returned [`Response`] is deterministic: same request, same response
/// prefix, regardless of worker, thread count, or cache state.
pub fn process_synth(req: &SynthRequest, deadline: &Deadline) -> Response {
    // Both arms of the inner Result are responses: `Err` short-circuits
    // through `?` at each deadline check or failed stage, `Ok` is the
    // success path. This is what keeps the per-stage cancellation flat.
    process_synth_checked(req, deadline).unwrap_or_else(|r| r)
}

fn process_synth_checked(
    req: &SynthRequest,
    deadline: &Deadline,
) -> Result<Response, Response> {
    deadline.check("dequeue")?;
    let sg = load_spec(&req.spec).map_err(|e| Response::error(400, format!("spec: {e}")))?;
    deadline.check(Stage::Parse.name())?;

    let mut body: Vec<(String, Json)> = vec![
        ("name".into(), Json::Str(sg.name().to_owned())),
        ("method".into(), Json::Str(req.method.name().into())),
        ("states".into(), Json::Num(sg.reachable().len() as f64)),
    ];

    match req.method {
        Method::Nshot => {
            let options = SynthesisOptions {
                minimizer: req.minimizer,
                delay_model: DelayModel::default(),
                share_products: req.share,
            };
            let imp = synthesize(&sg, &options)
                .map_err(|e| Response::error(422, format!("synthesis: {e}")))?;
            deadline.check("synthesize")?;
            body.push(("signals".into(), Json::Num(imp.signals.len() as f64)));
            body.push(("area".into(), Json::Num(f64::from(imp.area))));
            body.push(("delay_ns".into(), Json::Num(imp.delay_ns)));
            body.push((
                "product_terms".into(),
                Json::Num(imp.product_terms() as f64),
            ));
            body.push((
                "delay_compensation_free".into(),
                Json::Bool(imp.delay_compensation_free()),
            ));
            body.push((
                "triggers".into(),
                Json::Num(imp.signals.iter().map(|s| s.triggers.len()).sum::<usize>() as f64),
            ));
            if let Some(text) = netlist_text(&imp.netlist, req.format) {
                body.push((req.format.name().into(), text));
            }
            if req.trials > 0 {
                let summary = monte_carlo_chunked(&sg, &imp, req.trials, deadline)?;
                body.push(("trials".into(), Json::Num(summary.trials as f64)));
                body.push((
                    "clean_trials".into(),
                    Json::Num(summary.clean_trials as f64),
                ));
                body.push((
                    "total_transitions".into(),
                    Json::Num(summary.total_transitions as f64),
                ));
                body.push((
                    "hazard_free".into(),
                    Json::Bool(summary.clean_trials == summary.trials),
                ));
            }
        }
        Method::Syn => {
            let imp = nshot_baselines::syn(&sg, &DelayModel::default())
                .map_err(|e| Response::error(422, format!("syn: {e}")))?;
            body.push(("area".into(), Json::Num(f64::from(imp.area))));
            body.push(("delay_ns".into(), Json::Num(imp.delay_ns)));
            body.push(("ack_cubes".into(), Json::Num(imp.ack_cubes as f64)));
            if let Some(text) = netlist_text(&imp.netlist, req.format) {
                body.push((req.format.name().into(), text));
            }
        }
        Method::Sis => {
            let imp = nshot_baselines::sis(&sg, &DelayModel::default())
                .map_err(|e| Response::error(422, format!("sis: {e}")))?;
            body.push(("area".into(), Json::Num(f64::from(imp.area))));
            body.push(("delay_ns".into(), Json::Num(imp.delay_ns)));
            body.push(("delay_lines".into(), Json::Num(imp.delay_lines as f64)));
            if let Some(text) = netlist_text(&imp.netlist, req.format) {
                body.push((req.format.name().into(), text));
            }
        }
    }

    deadline.check("render")?;
    Ok(Response::ok(body))
}

/// Execute one verification request: synthesize the N-SHOT implementation,
/// model-check it exhaustively, and — past the state budget — fall back to
/// deadline-checked Monte-Carlo sampling ([`nshot_mc::FALLBACK_TRIALS`]
/// trials, the same count `nshot_mc::validate` uses).
///
/// The response is deterministic like [`process_synth`]'s: the `method`
/// field says whether the verdict is a `"proof"` or a
/// `"monte_carlo_fallback"`, and `hazard_free` is the bottom line either
/// way.
pub fn process_verify(req: &VerifyRequest, deadline: &Deadline) -> Response {
    process_verify_checked(req, deadline).unwrap_or_else(|r| r)
}

fn process_verify_checked(
    req: &VerifyRequest,
    deadline: &Deadline,
) -> Result<Response, Response> {
    deadline.check("dequeue")?;
    let sg = load_spec(&req.spec).map_err(|e| Response::error(400, format!("spec: {e}")))?;
    deadline.check(Stage::Parse.name())?;

    let options = SynthesisOptions {
        minimizer: req.minimizer,
        delay_model: DelayModel::default(),
        share_products: false,
    };
    let imp = synthesize(&sg, &options)
        .map_err(|e| Response::error(422, format!("synthesis: {e}")))?;
    deadline.check("synthesize")?;

    let config = McConfig {
        max_states: req.max_states,
        ..McConfig::default()
    };
    let verdict = nshot_mc::check(&sg, &imp.netlist, &config)
        .map_err(|e| Response::error(422, format!("model: {e}")))?;
    deadline.check(Stage::ModelCheck.name())?;

    let mut body: Vec<(String, Json)> = vec![
        ("name".into(), Json::Str(sg.name().to_owned())),
        ("states".into(), Json::Num(sg.reachable().len() as f64)),
        ("proved".into(), Json::Bool(verdict.is_proved())),
    ];
    match &verdict {
        Verdict::Proved(c) => {
            body.push(("method".into(), Json::Str("proof".into())));
            body.push(("explored_states".into(), Json::Num(c.stats.states as f64)));
            body.push(("edges".into(), Json::Num(c.stats.edges as f64)));
            body.push((
                "pruned_edges".into(),
                Json::Num(c.stats.pruned_edges as f64),
            ));
            body.push(("max_depth".into(), Json::Num(f64::from(c.stats.max_depth))));
            body.push((
                "peak_frontier".into(),
                Json::Num(c.stats.peak_frontier as f64),
            ));
            body.push(("prune_ratio".into(), Json::Num(c.stats.prune_ratio())));
            body.push((
                "visited_bytes".into(),
                Json::Num(c.stats.visited_bytes as f64),
            ));
            body.push((
                "eq1_assumed".into(),
                Json::Bool(c.assumed_delay_requirement),
            ));
            body.push(("hazard_free".into(), Json::Bool(true)));
        }
        Verdict::Violated(cex) => {
            body.push(("method".into(), Json::Str("proof".into())));
            body.push(("violation".into(), Json::Str(cex.violation.to_string())));
            body.push(("trace_depth".into(), Json::Num(cex.steps.len() as f64)));
            body.push(("counterexample".into(), Json::Str(cex.render())));
            body.push(("hazard_free".into(), Json::Bool(false)));
        }
        Verdict::BudgetExceeded(c) => {
            body.push((
                "method".into(),
                Json::Str("monte_carlo_fallback".into()),
            ));
            body.push(("explored_states".into(), Json::Num(c.stats.states as f64)));
            body.push((
                "peak_frontier".into(),
                Json::Num(c.stats.peak_frontier as f64),
            ));
            body.push((
                "final_frontier".into(),
                Json::Num(c.stats.final_frontier as f64),
            ));
            body.push(("prune_ratio".into(), Json::Num(c.stats.prune_ratio())));
            body.push((
                "visited_bytes".into(),
                Json::Num(c.stats.visited_bytes as f64),
            ));
            let summary =
                monte_carlo_chunked(&sg, &imp, nshot_mc::FALLBACK_TRIALS, deadline)?;
            body.push(("trials".into(), Json::Num(summary.trials as f64)));
            body.push((
                "clean_trials".into(),
                Json::Num(summary.clean_trials as f64),
            ));
            body.push(("hazard_free".into(), Json::Bool(summary.all_clean())));
        }
    }
    deadline.check("render")?;
    Ok(Response::ok(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const HANDSHAKE_SG: &str = "
        .name hs
        .inputs r
        .outputs g
        .initial 00
        00 +r 10
        10 +g 11
        11 -r 01
        01 -g 00
    ";

    const HANDSHAKE_G: &str = "
        .model hs
        .inputs r
        .outputs g
        .graph
        r+ g+
        g+ r-
        r- g-
        g- r+
        .marking { <g-,r+> }
        .end
    ";

    fn req(spec: &str) -> SynthRequest {
        SynthRequest {
            spec: spec.into(),
            method: Method::Nshot,
            minimizer: nshot_core::Minimizer::Heuristic,
            trials: 0,
            format: OutputFormat::Blif,
            share: true,
        }
    }

    #[test]
    fn synthesizes_both_spec_formats_identically() {
        let a = process_synth(&req(HANDSHAKE_SG), &Deadline::unlimited());
        let b = process_synth(&req(HANDSHAKE_G), &Deadline::unlimited());
        assert_eq!(a.code, 200);
        assert_eq!(b.code, 200);
        // Same area/delay either way (states and netlist details may differ
        // by signal ordering, but the handshake is symmetric).
        assert_eq!(
            a.body.iter().find(|(k, _)| k == "area"),
            b.body.iter().find(|(k, _)| k == "area")
        );
    }

    #[test]
    fn response_matches_direct_library_call() {
        let r = process_synth(&req(HANDSHAKE_SG), &Deadline::unlimited());
        let sg = nshot_sg::parse_sg(HANDSHAKE_SG).unwrap();
        let imp = synthesize(&sg, &SynthesisOptions::default()).unwrap();
        let blif = r
            .body
            .iter()
            .find(|(k, _)| k == "blif")
            .and_then(|(_, v)| v.as_str())
            .unwrap();
        assert_eq!(blif, imp.netlist.to_blif(), "byte-identical netlist");
        let area = r
            .body
            .iter()
            .find(|(k, _)| k == "area")
            .and_then(|(_, v)| v.as_f64())
            .unwrap();
        assert_eq!(area as u32, imp.area);
    }

    #[test]
    fn trials_chunking_matches_single_call() {
        let sg = nshot_sg::parse_sg(HANDSHAKE_SG).unwrap();
        let imp = synthesize(&sg, &SynthesisOptions::default()).unwrap();
        // 19 trials: 2 full chunks + a ragged tail.
        let direct = monte_carlo(&sg, &imp, &ConformanceConfig::default(), 19);
        let chunked =
            monte_carlo_chunked(&sg, &imp, 19, &Deadline::unlimited()).unwrap();
        assert_eq!(chunked.trials, direct.trials);
        assert_eq!(chunked.clean_trials, direct.clean_trials);
        assert_eq!(chunked.total_transitions, direct.total_transitions);
    }

    #[test]
    fn parse_failure_is_400_synthesis_failure_is_422() {
        let bad = process_synth(&req(".inputs r\n.initial 0\n"), &Deadline::unlimited());
        assert_eq!(bad.code, 400);
        // Semi-modularity violation: a valid SG the method cannot implement
        // (+y enabled in 00 but withdrawn by +a without firing).
        let smv = process_synth(
            &req(".inputs a\n.outputs y\n.initial 00\n00 +y 01\n00 +a 10\n10 -a 00\n"),
            &Deadline::unlimited(),
        );
        assert_eq!(smv.code, 422, "{:?}", smv.body);
    }

    #[test]
    fn expired_deadline_is_a_504() {
        let past = Deadline(Some(Instant::now() - Duration::from_millis(1)));
        let r = process_synth(&req(HANDSHAKE_SG), &past);
        assert_eq!(r.code, 504);
        assert_eq!(r.status, "error");
    }

    fn verify_req(spec: &str, max_states: usize) -> VerifyRequest {
        VerifyRequest {
            spec: spec.into(),
            minimizer: nshot_core::Minimizer::Heuristic,
            max_states,
        }
    }

    fn field<'a>(r: &'a Response, key: &str) -> &'a Json {
        &r.body.iter().find(|(k, _)| k == key).unwrap_or_else(|| panic!("no field {key}")).1
    }

    #[test]
    fn verify_proves_the_handshake() {
        let r = process_verify(
            &verify_req(HANDSHAKE_SG, nshot_core::DEFAULT_PROOF_STATES),
            &Deadline::unlimited(),
        );
        assert_eq!(r.code, 200, "{:?}", r.body);
        assert_eq!(field(&r, "proved").as_bool(), Some(true));
        assert_eq!(field(&r, "method").as_str(), Some("proof"));
        assert_eq!(field(&r, "hazard_free").as_bool(), Some(true));
        assert!(field(&r, "explored_states").as_u64().unwrap() > 4);
    }

    #[test]
    fn verify_budget_exhaustion_falls_back_to_sampling() {
        let r = process_verify(&verify_req(HANDSHAKE_SG, 2), &Deadline::unlimited());
        assert_eq!(r.code, 200, "{:?}", r.body);
        assert_eq!(field(&r, "proved").as_bool(), Some(false));
        assert_eq!(field(&r, "method").as_str(), Some("monte_carlo_fallback"));
        assert_eq!(
            field(&r, "trials").as_u64(),
            Some(nshot_mc::FALLBACK_TRIALS as u64)
        );
        assert_eq!(field(&r, "hazard_free").as_bool(), Some(true));
    }

    #[test]
    fn verify_rejects_bad_and_unsynthesizable_specs() {
        let bad = process_verify(
            &verify_req(".inputs r\n.initial 0\n", 1000),
            &Deadline::unlimited(),
        );
        assert_eq!(bad.code, 400);
        let smv = process_verify(
            &verify_req(
                ".inputs a\n.outputs y\n.initial 00\n00 +y 01\n00 +a 10\n10 -a 00\n",
                1000,
            ),
            &Deadline::unlimited(),
        );
        assert_eq!(smv.code, 422, "{:?}", smv.body);
    }

    #[test]
    fn verify_response_is_deterministic() {
        let a = process_verify(&verify_req(HANDSHAKE_G, 100_000), &Deadline::unlimited());
        let b = process_verify(&verify_req(HANDSHAKE_G, 100_000), &Deadline::unlimited());
        assert_eq!(a.deterministic_fields(), b.deterministic_fields());
    }

    #[test]
    fn expired_deadline_fails_verify_with_504() {
        let past = Deadline(Some(Instant::now() - Duration::from_millis(1)));
        let r = process_verify(&verify_req(HANDSHAKE_SG, 1000), &past);
        assert_eq!(r.code, 504);
    }

    #[test]
    fn baselines_run_and_report() {
        let mut syn_req = req(HANDSHAKE_SG);
        syn_req.method = Method::Syn;
        let r = process_synth(&syn_req, &Deadline::unlimited());
        assert_eq!(r.code, 200);
        assert!(r.body.iter().any(|(k, _)| k == "ack_cubes"));

        let mut sis_req = req(HANDSHAKE_SG);
        sis_req.method = Method::Sis;
        sis_req.format = OutputFormat::None;
        let r = process_synth(&sis_req, &Deadline::unlimited());
        assert_eq!(r.code, 200);
        assert!(r.body.iter().all(|(k, _)| k != "blif" && k != "verilog"));
    }
}
