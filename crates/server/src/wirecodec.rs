//! Binary payload encodings for the protocol, built on `nshot-wire`.
//!
//! `nshot-wire` owns the *frame* layer (tag, version, varint length, CRC
//! trailer, transparent compression); this module owns what rides inside
//! the frames once a connection has negotiated `format: binary`:
//!
//! * a **value encoding** mirroring [`Json`] (type byte, then the
//!   payload), so any field the NDJSON protocol can carry travels in
//!   binary without a schema change;
//! * the **request envelope** (`REQUEST` frames): id value, op byte, then
//!   the op-specific fields — validated against the same limits as
//!   [`crate::protocol::parse_request`], so a binary client cannot sneak
//!   past the JSON path's caps;
//! * the **response stream** (`RESPONSE_HEAD`, one `FIELD` per body
//!   field, `END` with the field count) — responses go out record by
//!   record instead of as one rendered line;
//! * the **store value encoding** (`RESPONSE_STORE_VERSION` 2): code,
//!   status byte and the structured body, replacing the version-1
//!   deterministic-field JSON string;
//! * standalone **artifact frames** (`SPEC`/`NETLIST`/`CERT`): raw UTF-8
//!   text, used by the golden wire fixtures and the differential tests.
//!
//! Decoding failures split in two: structural damage (truncation, bad
//! type byte, bad UTF-8) is a typed [`WireError`] — counted in
//! `nshot_wire_decode_errors_total`, and the connection is closed because
//! framing can no longer be trusted; a *well-formed* envelope carrying an
//! invalid request (unknown op byte, oversized `trials`) is a semantic
//! error answered with a 400 response, exactly like the JSON path.
//!
//! Determinism note: numbers are IEEE-754 bit patterns (little-endian),
//! strings are raw UTF-8, and object/array order is preserved, so
//! decode → re-render reproduces the NDJSON rendering byte for byte. The
//! differential tests (`tests/wire_differential.rs`) hold both paths to
//! that.

use crate::json::{self, Json};
use crate::protocol::{
    Envelope, Method, OutputFormat, Request, Response, SynthRequest, VerifyRequest,
    MAX_VERIFY_STATES,
};
use nshot_core::Minimizer;
use nshot_wire::{encode_frame, get_varint, put_varint, read_frame, tags, Frame, WireError};
use std::io::BufRead;

/// Value type bytes.
mod ty {
    pub const NULL: u8 = 0;
    pub const FALSE: u8 = 1;
    pub const TRUE: u8 = 2;
    pub const NUM: u8 = 3;
    pub const STR: u8 = 4;
    pub const ARR: u8 = 5;
    pub const OBJ: u8 = 6;
}

/// Request op bytes (`0` is reserved so an all-zero payload never parses).
mod op {
    pub const SYNTH: u8 = 1;
    pub const VERIFY: u8 = 2;
    pub const STATS: u8 = 3;
    pub const METRICS: u8 = 4;
    pub const PING: u8 = 5;
    pub const SHUTDOWN: u8 = 6;
}

/// Nesting cap for decoded values: protocol objects are two levels deep,
/// and a hostile frame must not be able to recurse the stack away.
const MAX_VALUE_DEPTH: u32 = 32;

/// A bounds-checked read cursor over one frame payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: self.pos + n,
                have: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16_le(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn f64_le(&mut self) -> Result<f64, WireError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let (v, used) = get_varint(&self.buf[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    /// A length-prefixed UTF-8 string. The length is capped by the bytes
    /// actually present, so a hostile prefix cannot force an allocation.
    fn str_(&mut self) -> Result<String, WireError> {
        let len = self.varint()?;
        if len > self.remaining() as u64 {
            return Err(WireError::Truncated {
                needed: self.pos + len as usize,
                have: self.buf.len(),
            });
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-utf8 string"))
    }

    fn bool_(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bad bool byte")),
        }
    }

    /// Reject trailing bytes: every payload must be consumed exactly.
    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, WireError> {
        if depth >= MAX_VALUE_DEPTH {
            return Err(WireError::Malformed("value nested too deeply"));
        }
        match self.u8()? {
            ty::NULL => Ok(Json::Null),
            ty::FALSE => Ok(Json::Bool(false)),
            ty::TRUE => Ok(Json::Bool(true)),
            ty::NUM => {
                let n = self.f64_le()?;
                if !n.is_finite() {
                    return Err(WireError::Malformed("non-finite number"));
                }
                Ok(Json::Num(n))
            }
            ty::STR => Ok(Json::Str(self.str_()?)),
            ty::ARR => {
                let count = self.varint()?;
                // Each element costs ≥ 1 byte, so the element count is
                // bounded by the bytes left — checked before reserving.
                if count > self.remaining() as u64 {
                    return Err(WireError::Malformed("array count exceeds payload"));
                }
                let mut items = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Json::Arr(items))
            }
            ty::OBJ => {
                let count = self.varint()?;
                if count > self.remaining() as u64 {
                    return Err(WireError::Malformed("object count exceeds payload"));
                }
                let mut pairs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let key = self.str_()?;
                    pairs.push((key, self.value(depth + 1)?));
                }
                Ok(Json::Obj(pairs))
            }
            _ => Err(WireError::Malformed("unknown value type byte")),
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Encode one [`Json`] value (type byte + payload). Deterministic: equal
/// values encode to equal bytes.
pub fn encode_value(out: &mut Vec<u8>, value: &Json) {
    match value {
        Json::Null => out.push(ty::NULL),
        Json::Bool(false) => out.push(ty::FALSE),
        Json::Bool(true) => out.push(ty::TRUE),
        Json::Num(n) => {
            out.push(ty::NUM);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Json::Str(s) => {
            out.push(ty::STR);
            put_str(out, s);
        }
        Json::Arr(items) => {
            out.push(ty::ARR);
            put_varint(out, items.len() as u64);
            for v in items {
                encode_value(out, v);
            }
        }
        Json::Obj(pairs) => {
            out.push(ty::OBJ);
            put_varint(out, pairs.len() as u64);
            for (k, v) in pairs {
                put_str(out, k);
                encode_value(out, v);
            }
        }
    }
}

/// Decode one [`Json`] value occupying the whole buffer.
///
/// # Errors
///
/// Typed [`WireError`] (counted) — never a panic, never an over-read.
pub fn decode_value(buf: &[u8]) -> Result<Json, WireError> {
    (|| {
        let mut cur = Cur::new(buf);
        let v = cur.value(0)?;
        cur.done()?;
        Ok(v)
    })()
    .map_err(WireError::noted)
}

fn method_byte(m: Method) -> u8 {
    match m {
        Method::Nshot => 1,
        Method::Syn => 2,
        Method::Sis => 3,
    }
}

fn minimizer_byte(m: Minimizer) -> u8 {
    match m {
        Minimizer::Heuristic => 1,
        Minimizer::Exact => 2,
        Minimizer::MultiOutput => 3,
    }
}

fn format_byte(f: OutputFormat) -> u8 {
    match f {
        OutputFormat::Blif => 1,
        OutputFormat::Verilog => 2,
        OutputFormat::None => 3,
    }
}

fn status_byte(status: &str) -> u8 {
    match status {
        "ok" => 0,
        "rejected" => 2,
        _ => 1,
    }
}

fn status_name(byte: u8) -> Result<&'static str, WireError> {
    match byte {
        0 => Ok("ok"),
        1 => Ok("error"),
        2 => Ok("rejected"),
        _ => Err(WireError::Malformed("unknown status byte")),
    }
}

/// How decoding a `REQUEST` frame payload can fail.
#[derive(Debug)]
pub enum RequestDecodeError {
    /// Structural damage — the connection's framing can no longer be
    /// trusted, so the server closes it (after counting the error).
    Frame(WireError),
    /// A well-formed envelope carrying an invalid request: answered with
    /// a 400 response carrying the recovered id, like the JSON path.
    Invalid {
        /// Correlation id recovered from the envelope.
        id: Json,
        /// Human-readable refusal, mirroring `parse_request`'s wording.
        message: String,
    },
}

/// Encode one request envelope as a complete `REQUEST` frame.
///
/// # Errors
///
/// [`WireError::Malformed`] for [`Request::Hello`] — negotiation is
/// NDJSON-only (a binary connection has, by definition, already said
/// hello).
pub fn encode_request(env: &Envelope) -> Result<Vec<u8>, WireError> {
    let mut p = Vec::new();
    encode_value(&mut p, &env.id);
    match &env.request {
        Request::Synth(s) => {
            p.push(op::SYNTH);
            p.push(method_byte(s.method));
            p.push(minimizer_byte(s.minimizer));
            put_varint(&mut p, s.trials as u64);
            p.push(format_byte(s.format));
            p.push(u8::from(s.share));
            put_str(&mut p, &s.spec);
        }
        Request::Verify(v) => {
            p.push(op::VERIFY);
            p.push(minimizer_byte(v.minimizer));
            put_varint(&mut p, v.max_states as u64);
            put_str(&mut p, &v.spec);
        }
        Request::Stats => p.push(op::STATS),
        Request::Metrics => p.push(op::METRICS),
        Request::Ping => p.push(op::PING),
        Request::Shutdown => p.push(op::SHUTDOWN),
        Request::Hello { .. } => return Err(WireError::Malformed("hello is json-only")),
    }
    Ok(encode_frame(tags::REQUEST, &p))
}

/// Decode a `REQUEST` frame payload, applying the same validation limits
/// as the JSON parser.
///
/// # Errors
///
/// [`RequestDecodeError`] — structural damage closes the connection,
/// semantic refusals become 400 responses.
pub fn decode_request(payload: &[u8]) -> Result<Envelope, RequestDecodeError> {
    let mut cur = Cur::new(payload);
    let frame_err = |e: WireError| RequestDecodeError::Frame(e.noted());
    let id = cur.value(0).map_err(frame_err)?;
    let invalid = |message: String| RequestDecodeError::Invalid {
        id: id.clone(),
        message,
    };
    let op_byte = cur.u8().map_err(frame_err)?;
    let request = match op_byte {
        op::STATS => Request::Stats,
        op::METRICS => Request::Metrics,
        op::PING => Request::Ping,
        op::SHUTDOWN => Request::Shutdown,
        op::SYNTH => {
            let method = match cur.u8().map_err(frame_err)? {
                1 => Method::Nshot,
                2 => Method::Syn,
                3 => Method::Sis,
                other => return Err(invalid(format!("unknown method byte {other}"))),
            };
            let minimizer = match cur.u8().map_err(frame_err)? {
                1 => Minimizer::Heuristic,
                2 => Minimizer::Exact,
                3 => Minimizer::MultiOutput,
                other => return Err(invalid(format!("unknown minimizer byte {other}"))),
            };
            let trials = cur.varint().map_err(frame_err)?;
            if trials > 10_000 {
                return Err(invalid("'trials' must be an integer ≤ 10000".into()));
            }
            let format = match cur.u8().map_err(frame_err)? {
                1 => OutputFormat::Blif,
                2 => OutputFormat::Verilog,
                3 => OutputFormat::None,
                other => return Err(invalid(format!("unknown format byte {other}"))),
            };
            let share = cur.bool_().map_err(frame_err)?;
            let spec = cur.str_().map_err(frame_err)?;
            Request::Synth(SynthRequest {
                spec,
                method,
                minimizer,
                trials: trials as usize,
                format,
                share,
            })
        }
        op::VERIFY => {
            let minimizer = match cur.u8().map_err(frame_err)? {
                1 => Minimizer::Heuristic,
                2 => Minimizer::Exact,
                3 => Minimizer::MultiOutput,
                other => return Err(invalid(format!("unknown minimizer byte {other}"))),
            };
            let max_states = cur.varint().map_err(frame_err)?;
            if !(1..=MAX_VERIFY_STATES as u64).contains(&max_states) {
                return Err(invalid(format!(
                    "'max_states' must be an integer in 1..={MAX_VERIFY_STATES}"
                )));
            }
            let spec = cur.str_().map_err(frame_err)?;
            Request::Verify(VerifyRequest {
                spec,
                minimizer,
                max_states: max_states as usize,
            })
        }
        other => return Err(invalid(format!("unknown op byte {other}"))),
    };
    cur.done().map_err(frame_err)?;
    Ok(Envelope { id, request })
}

/// One decoded `RESPONSE_HEAD`: everything a response line carries outside
/// the deterministic body fields.
#[derive(Debug, PartialEq)]
pub struct ResponseHead {
    /// Echoed correlation id.
    pub id: Json,
    /// HTTP-flavoured status code.
    pub code: u16,
    /// `"ok"`, `"error"` or `"rejected"`.
    pub status: &'static str,
    /// Whether the deterministic body was served from the response cache.
    pub cached: bool,
    /// Wall-clock service time in µs, stamped at send time.
    pub service_us: u64,
    /// The request's trace id.
    pub trace: u64,
    /// The per-stage timing object, pre-rendered as JSON (empty = absent),
    /// exactly as the NDJSON path would append it.
    pub timing_json: String,
}

/// Encode one complete response as its frame stream: `RESPONSE_HEAD`, one
/// `FIELD` per body field, then `END` carrying the field count.
pub fn encode_response_frames(
    id: &Json,
    code: u16,
    status: &str,
    body: &[(String, Json)],
    cached: bool,
    service_us: u64,
    trace: u64,
    timing_json: &str,
) -> Vec<Vec<u8>> {
    let mut head = Vec::new();
    encode_value(&mut head, id);
    head.extend_from_slice(&code.to_le_bytes());
    head.push(status_byte(status));
    head.push(u8::from(cached));
    put_varint(&mut head, service_us);
    put_varint(&mut head, trace);
    if timing_json.is_empty() {
        encode_value(&mut head, &Json::Null);
    } else {
        encode_value(&mut head, &Json::Str(timing_json.to_owned()));
    }

    let mut frames = Vec::with_capacity(body.len() + 2);
    frames.push(encode_frame(tags::RESPONSE_HEAD, &head));
    for (k, v) in body {
        let mut field = Vec::new();
        put_str(&mut field, k);
        encode_value(&mut field, v);
        frames.push(encode_frame(tags::FIELD, &field));
    }
    let mut end = Vec::new();
    put_varint(&mut end, body.len() as u64);
    frames.push(encode_frame(tags::END, &end));
    frames
}

/// Decode a `RESPONSE_HEAD` payload.
///
/// # Errors
///
/// Typed [`WireError`] (counted).
pub fn decode_response_head(payload: &[u8]) -> Result<ResponseHead, WireError> {
    (|| {
        let mut cur = Cur::new(payload);
        let id = cur.value(0)?;
        let code = cur.u16_le()?;
        let status = status_name(cur.u8()?)?;
        let cached = cur.bool_()?;
        let service_us = cur.varint()?;
        let trace = cur.varint()?;
        let timing_json = match cur.value(0)? {
            Json::Null => String::new(),
            Json::Str(s) => s,
            _ => return Err(WireError::Malformed("timing must be a string or null")),
        };
        cur.done()?;
        Ok(ResponseHead {
            id,
            code,
            status,
            cached,
            service_us,
            trace,
            timing_json,
        })
    })()
    .map_err(WireError::noted)
}

/// Decode one `FIELD` payload into its `(name, value)` pair.
///
/// # Errors
///
/// Typed [`WireError`] (counted).
pub fn decode_field(payload: &[u8]) -> Result<(String, Json), WireError> {
    (|| {
        let mut cur = Cur::new(payload);
        let key = cur.str_()?;
        let value = cur.value(0)?;
        cur.done()?;
        Ok((key, value))
    })()
    .map_err(WireError::noted)
}

/// Decode an `END` payload into the field count it declares.
///
/// # Errors
///
/// Typed [`WireError`] (counted).
pub fn decode_end(payload: &[u8]) -> Result<u64, WireError> {
    (|| {
        let mut cur = Cur::new(payload);
        let count = cur.varint()?;
        cur.done()?;
        Ok(count)
    })()
    .map_err(WireError::noted)
}

/// Read one full response stream (head, fields, end) and assemble the
/// same object shape the NDJSON line parses to — key order included — so
/// callers compare the two transports value for value.
///
/// # Errors
///
/// Typed [`WireError`]; a clean EOF before the head is
/// [`WireError::Io`]`(UnexpectedEof)`, mid-stream EOF is truncation.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Json, WireError> {
    let head = match read_frame(reader)? {
        None => return Err(WireError::Io(std::io::ErrorKind::UnexpectedEof)),
        Some(f) if f.tag == tags::RESPONSE_HEAD => decode_response_head(&f.payload)?,
        Some(_) => {
            return Err(WireError::Malformed("expected a response head frame").noted())
        }
    };
    let mut body: Vec<(String, Json)> = Vec::new();
    loop {
        match read_frame(reader)? {
            None => {
                return Err(WireError::Truncated {
                    needed: 1,
                    have: 0,
                })
            }
            Some(f) if f.tag == tags::FIELD => body.push(decode_field(&f.payload)?),
            Some(f) if f.tag == tags::END => {
                let declared = decode_end(&f.payload)?;
                if declared != body.len() as u64 {
                    return Err(WireError::Malformed("field count mismatch").noted());
                }
                break;
            }
            Some(_) => {
                return Err(WireError::Malformed("unexpected frame in response stream").noted())
            }
        }
    }

    let mut pairs = vec![
        ("id".to_owned(), head.id),
        ("code".to_owned(), Json::Num(f64::from(head.code))),
        ("status".to_owned(), Json::Str(head.status.to_owned())),
    ];
    pairs.extend(body);
    pairs.push(("cached".to_owned(), Json::Bool(head.cached)));
    pairs.push(("service_us".to_owned(), Json::Num(head.service_us as f64)));
    pairs.push(("trace".to_owned(), Json::Num(head.trace as f64)));
    if !head.timing_json.is_empty() {
        let timing = json::parse(&head.timing_json)
            .map_err(|_| WireError::Malformed("bad timing json").noted())?;
        pairs.push(("timing".to_owned(), timing));
    }
    Ok(Json::Obj(pairs))
}

/// Split an assembled response object (the shape [`read_response`]
/// returns and an NDJSON line parses to) back into its frame stream —
/// the inverse of [`read_response`]. The shard front uses this to relay
/// a backend's answer to a binary-framed client; because the value
/// encoding is deterministic, relayed deterministic fields stay
/// byte-identical to a direct binary call.
///
/// # Errors
///
/// [`WireError::Malformed`] when the object is missing the envelope
/// fields (`id`, `code`, `status`, `cached`, `service_us`, `trace`) or
/// they have the wrong types.
pub fn encode_response_obj(obj: &Json) -> Result<Vec<Vec<u8>>, WireError> {
    let Json::Obj(pairs) = obj else {
        return Err(WireError::Malformed("response must be an object"));
    };
    let field = |name: &'static str| {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or(WireError::Malformed("response missing an envelope field"))
    };
    let id = field("id")?;
    let code = field("code")?
        .as_u64()
        .and_then(|n| u16::try_from(n).ok())
        .ok_or(WireError::Malformed("bad response code"))?;
    let status = match field("status")?.as_str() {
        Some("ok") => "ok",
        Some("error") => "error",
        Some("rejected") => "rejected",
        _ => return Err(WireError::Malformed("bad response status")),
    };
    let cached = field("cached")?
        .as_bool()
        .ok_or(WireError::Malformed("bad cached flag"))?;
    let service_us = field("service_us")?
        .as_u64()
        .ok_or(WireError::Malformed("bad service_us"))?;
    let trace = field("trace")?
        .as_u64()
        .ok_or(WireError::Malformed("bad trace"))?;
    let timing_json = match pairs.iter().find(|(k, _)| k == "timing") {
        Some((_, t)) => t.to_string(),
        None => String::new(),
    };
    // The body is everything that is not envelope: the fields between
    // `status` and `cached` in render order.
    const ENVELOPE: [&str; 7] =
        ["id", "code", "status", "cached", "service_us", "trace", "timing"];
    let body: Vec<(String, Json)> = pairs
        .iter()
        .filter(|(k, _)| !ENVELOPE.contains(&k.as_str()))
        .cloned()
        .collect();
    Ok(encode_response_frames(
        id,
        code,
        status,
        &body,
        cached,
        service_us,
        trace,
        &timing_json,
    ))
}

/// Encode the version-2 store value for a persisted response: code,
/// status byte, then the structured body.
pub fn encode_response_value(code: u16, status: &str, body: &[(String, Json)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&code.to_le_bytes());
    out.push(status_byte(status));
    put_varint(&mut out, body.len() as u64);
    for (k, v) in body {
        put_str(&mut out, k);
        encode_value(&mut out, v);
    }
    out
}

/// Decode a version-2 store value back into a [`Response`].
///
/// # Errors
///
/// Typed [`WireError`] (counted) — a damaged store record is skipped by
/// the caller, never served.
pub fn decode_response_value(bytes: &[u8]) -> Result<Response, WireError> {
    (|| {
        let mut cur = Cur::new(bytes);
        let code = cur.u16_le()?;
        let status = status_name(cur.u8()?)?;
        let count = cur.varint()?;
        if count > cur.remaining() as u64 {
            return Err(WireError::Malformed("field count exceeds payload"));
        }
        let mut body = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let key = cur.str_()?;
            body.push((key, cur.value(0)?));
        }
        cur.done()?;
        Ok(Response { code, status, body })
    })()
    .map_err(WireError::noted)
}

/// Encode a standalone artifact (`SPEC`/`NETLIST`/`CERT`) as a complete
/// frame. The payload is the raw UTF-8 text.
pub fn encode_artifact(tag: u8, text: &str) -> Vec<u8> {
    debug_assert!(matches!(tag, tags::SPEC | tags::NETLIST | tags::CERT));
    encode_frame(tag, text.as_bytes())
}

/// Decode a standalone artifact frame back to its text.
///
/// # Errors
///
/// [`WireError::Malformed`] for a non-artifact tag or non-UTF-8 payload.
pub fn decode_artifact(frame: &Frame) -> Result<String, WireError> {
    (|| {
        if !matches!(frame.tag, tags::SPEC | tags::NETLIST | tags::CERT) {
            return Err(WireError::Malformed("not an artifact frame"));
        }
        String::from_utf8(frame.payload.clone())
            .map_err(|_| WireError::Malformed("non-utf8 artifact"))
    })()
    .map_err(WireError::noted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshot_wire::decode_frame;

    fn roundtrip_value(v: &Json) {
        let mut bytes = Vec::new();
        encode_value(&mut bytes, v);
        assert_eq!(&decode_value(&bytes).expect("decode"), v);
    }

    #[test]
    fn values_round_trip() {
        roundtrip_value(&Json::Null);
        roundtrip_value(&Json::Bool(true));
        roundtrip_value(&Json::Bool(false));
        roundtrip_value(&Json::Num(0.0));
        roundtrip_value(&Json::Num(-4.5));
        roundtrip_value(&Json::Num(9_007_199_254_740_992.0));
        roundtrip_value(&Json::Str("τ→λ with\nnewlines".into()));
        roundtrip_value(&Json::Arr(vec![Json::Num(1.0), Json::Str("x".into())]));
        roundtrip_value(&Json::Obj(vec![
            ("a".into(), Json::Null),
            ("b".into(), Json::Arr(vec![Json::Obj(vec![])])),
        ]));
    }

    #[test]
    fn hostile_values_are_typed_errors() {
        // Unknown type byte.
        assert!(decode_value(&[9]).is_err());
        // Non-finite number.
        let mut nan = vec![ty::NUM];
        nan.extend_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode_value(&nan).is_err());
        // String length past the payload.
        assert!(decode_value(&[ty::STR, 200]).is_err());
        // Array count past the payload (must not allocate the count).
        let mut arr = vec![ty::ARR];
        put_varint(&mut arr, u64::MAX / 2);
        assert!(decode_value(&arr).is_err());
        // Nesting past the depth cap.
        let mut deep = vec![ty::ARR, 1].repeat(MAX_VALUE_DEPTH as usize + 1);
        deep.push(ty::NULL);
        assert!(matches!(
            decode_value(&deep),
            Err(WireError::Malformed("value nested too deeply"))
        ));
        // Trailing bytes.
        assert!(decode_value(&[ty::NULL, 0]).is_err());
    }

    fn synth_envelope() -> Envelope {
        Envelope {
            id: Json::Num(7.0),
            request: Request::Synth(SynthRequest {
                spec: ".inputs r\n.outputs g\n".into(),
                method: Method::Syn,
                minimizer: Minimizer::Exact,
                trials: 12,
                format: OutputFormat::Verilog,
                share: true,
            }),
        }
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let envs = vec![
            synth_envelope(),
            Envelope {
                id: Json::Str("v1".into()),
                request: Request::Verify(VerifyRequest {
                    spec: ".inputs a\n".into(),
                    minimizer: Minimizer::MultiOutput,
                    max_states: 4_000,
                }),
            },
            Envelope {
                id: Json::Null,
                request: Request::Stats,
            },
            Envelope {
                id: Json::Num(1.0),
                request: Request::Metrics,
            },
            Envelope {
                id: Json::Num(2.0),
                request: Request::Ping,
            },
            Envelope {
                id: Json::Num(3.0),
                request: Request::Shutdown,
            },
        ];
        for env in envs {
            let bytes = encode_request(&env).expect("encode");
            let (frame, used) = decode_frame(&bytes).expect("frame");
            assert_eq!(used, bytes.len());
            assert_eq!(frame.tag, tags::REQUEST);
            let back = decode_request(&frame.payload).expect("request");
            assert_eq!(back.id, env.id);
            match (&back.request, &env.request) {
                (Request::Synth(a), Request::Synth(b)) => {
                    assert_eq!(a.spec, b.spec);
                    assert_eq!(a.method, b.method);
                    assert_eq!(a.minimizer, b.minimizer);
                    assert_eq!(a.trials, b.trials);
                    assert_eq!(a.format, b.format);
                    assert_eq!(a.share, b.share);
                }
                (Request::Verify(a), Request::Verify(b)) => {
                    assert_eq!(a.spec, b.spec);
                    assert_eq!(a.minimizer, b.minimizer);
                    assert_eq!(a.max_states, b.max_states);
                }
                (Request::Stats, Request::Stats)
                | (Request::Metrics, Request::Metrics)
                | (Request::Ping, Request::Ping)
                | (Request::Shutdown, Request::Shutdown) => {}
                other => panic!("mismatched ops: {other:?}"),
            }
        }
    }

    #[test]
    fn binary_requests_hit_the_same_validation_limits() {
        // Oversized trials: semantic — the id is recovered and the wording
        // matches the JSON parser's.
        let mut p = Vec::new();
        encode_value(&mut p, &Json::Num(9.0));
        p.extend_from_slice(&[op::SYNTH, 1, 1]);
        put_varint(&mut p, 10_001);
        p.extend_from_slice(&[1, 0]);
        put_str(&mut p, "x");
        match decode_request(&p) {
            Err(RequestDecodeError::Invalid { id, message }) => {
                assert_eq!(id.as_u64(), Some(9));
                assert!(message.contains("trials"), "{message}");
            }
            other => panic!("expected semantic refusal: {other:?}"),
        }

        // Unknown op byte: semantic, like an unknown `op` string.
        let mut p = Vec::new();
        encode_value(&mut p, &Json::Null);
        p.push(99);
        assert!(matches!(
            decode_request(&p),
            Err(RequestDecodeError::Invalid { .. })
        ));

        // Truncated payload: structural — close the connection.
        let env = synth_envelope();
        let bytes = encode_request(&env).expect("encode");
        let (frame, _) = decode_frame(&bytes).expect("frame");
        assert!(matches!(
            decode_request(&frame.payload[..frame.payload.len() - 1]),
            Err(RequestDecodeError::Frame(_))
        ));

        // Hello never encodes: negotiation is NDJSON-only.
        assert!(encode_request(&Envelope {
            id: Json::Null,
            request: Request::Hello { binary: true },
        })
        .is_err());
    }

    #[test]
    fn response_streams_round_trip() {
        let body = vec![
            ("name".to_owned(), Json::Str("hs".into())),
            ("area".to_owned(), Json::Num(52.0)),
            ("netlist".to_owned(), Json::Str(".model hs\n.end\n".repeat(40))),
        ];
        let frames = encode_response_frames(
            &Json::Num(3.0),
            200,
            "ok",
            &body,
            true,
            1234,
            77,
            "{\"parse\":3}",
        );
        assert_eq!(frames.len(), body.len() + 2);
        let stream: Vec<u8> = frames.concat();
        let mut reader = std::io::Cursor::new(stream);
        let obj = read_response(&mut reader).expect("response");
        assert_eq!(obj.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(obj.get("code").unwrap().as_u64(), Some(200));
        assert_eq!(obj.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(obj.get("area").unwrap().as_u64(), Some(52));
        assert_eq!(obj.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(obj.get("service_us").unwrap().as_u64(), Some(1234));
        assert_eq!(obj.get("trace").unwrap().as_u64(), Some(77));
        assert_eq!(
            obj.get("timing").unwrap().get("parse").unwrap().as_u64(),
            Some(3)
        );
        // The field order matches the NDJSON rendering exactly.
        let Json::Obj(pairs) = obj else { panic!() };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["id", "code", "status", "name", "area", "netlist", "cached", "service_us",
             "trace", "timing"]
        );
    }

    #[test]
    fn relayed_response_frames_are_byte_identical() {
        // The shard front decodes a backend's frame stream into the
        // object shape and re-encodes it for the client; that relay must
        // reproduce the exact bytes a direct connection would see.
        let body = vec![
            ("name".to_owned(), Json::Str("hs".into())),
            ("area".to_owned(), Json::Num(52.5)),
            ("hazard_free".to_owned(), Json::Bool(true)),
        ];
        let frames = encode_response_frames(
            &Json::Str("req-1".into()),
            200,
            "ok",
            &body,
            false,
            88,
            21,
            "{\"parse\":3,\"minimize\":900}",
        );
        let mut reader = std::io::Cursor::new(frames.concat());
        let obj = read_response(&mut reader).expect("response");
        assert_eq!(encode_response_obj(&obj).expect("re-encode"), frames);

        // And the NDJSON line parses to an object this can frame too.
        let line = crate::protocol::render_response(
            &Json::Num(4.0),
            "\"code\":422,\"status\":\"error\",\"error\":\"csc conflict\"",
            true,
            12,
            9,
            "",
        );
        let parsed = json::parse(&line).expect("line json");
        let relayed = encode_response_obj(&parsed).expect("frames");
        let mut reader = std::io::Cursor::new(relayed.concat());
        let back = read_response(&mut reader).expect("response");
        assert_eq!(back, parsed);

        assert!(encode_response_obj(&Json::Null).is_err());
        assert!(encode_response_obj(&Json::Obj(vec![])).is_err());
    }

    #[test]
    fn response_stream_rejects_a_field_count_mismatch() {
        let frames = encode_response_frames(&Json::Null, 200, "ok", &[], false, 1, 2, "");
        // Drop the END frame's declared count by splicing in a lying END.
        let mut lying_end = Vec::new();
        put_varint(&mut lying_end, 5);
        let stream: Vec<u8> = [frames[0].clone(), encode_frame(tags::END, &lying_end)].concat();
        let mut reader = std::io::Cursor::new(stream);
        assert!(matches!(
            read_response(&mut reader),
            Err(WireError::Malformed("field count mismatch"))
        ));
    }

    #[test]
    fn store_values_round_trip() {
        let body = vec![
            ("verdict".to_owned(), Json::Bool(true)),
            ("netlist".to_owned(), Json::Str(".model x\n".into())),
        ];
        let bytes = encode_response_value(422, "error", &body);
        let back = decode_response_value(&bytes).expect("decode");
        assert_eq!(back.code, 422);
        assert_eq!(back.status, "error");
        assert_eq!(back.body, body);
        // Damage is typed, never served.
        assert!(decode_response_value(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_response_value(&[]).is_err());
        let mut bad_status = bytes.clone();
        bad_status[2] = 9;
        assert!(matches!(
            decode_response_value(&bad_status),
            Err(WireError::Malformed("unknown status byte"))
        ));
    }

    #[test]
    fn artifacts_round_trip() {
        let spec = ".name hs\n.inputs r\n.outputs g\n".repeat(10);
        let bytes = encode_artifact(tags::SPEC, &spec);
        let (frame, _) = decode_frame(&bytes).expect("frame");
        assert_eq!(frame.tag, tags::SPEC);
        assert_eq!(decode_artifact(&frame).expect("text"), spec);
        let bad = Frame {
            tag: tags::REQUEST,
            payload: Vec::new(),
        };
        assert!(decode_artifact(&bad).is_err());
    }
}
