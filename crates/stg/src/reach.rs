//! Reachability elaboration: STG → state graph.

use crate::error::StgError;
use crate::petri::{Marking, Stg};
use nshot_par::FxHashMap;
use nshot_sg::{SgBuilder, StateGraph};
use std::collections::VecDeque;

/// Default cap on the number of reachable markings.
const DEFAULT_STATE_CAP: usize = 500_000;

impl Stg {
    /// Elaborate the STG into a validated [`StateGraph`] by exhaustive token
    /// game exploration, inferring initial signal values from the transition
    /// constraints (a marking about to fire `a+` has `a = 0`, and values
    /// propagate across edges of other signals).
    ///
    /// # Errors
    ///
    /// * [`StgError::Unbounded`] / [`StgError::TooManyStates`] for nets that
    ///   blow up;
    /// * [`StgError::InconsistentSignal`] when no consistent state assignment
    ///   exists (the STG violates consistency);
    /// * [`StgError::Sg`] when the reachability graph fails state-graph
    ///   validation (e.g. two same-label transitions enabled together).
    pub fn elaborate(&self) -> Result<StateGraph, StgError> {
        self.elaborate_with_cap(DEFAULT_STATE_CAP)
    }

    /// [`Stg::elaborate`] with an explicit cap on reachable markings.
    ///
    /// # Errors
    ///
    /// See [`Stg::elaborate`].
    pub fn elaborate_with_cap(&self, cap: usize) -> Result<StateGraph, StgError> {
        let _span = nshot_obs::span(nshot_obs::Stage::Elaborate);
        self.check_structure()?;
        // State codes are packed into a u64; reject oversized declarations
        // up front so the phase-2 bit shifts cannot overflow.
        if self.num_signals() > 63 {
            return Err(StgError::Sg(nshot_sg::SgError::TooManySignals(
                self.num_signals(),
            )));
        }

        // --- Phase 1: explore the marking graph.
        let m0 = self.initial_marking();
        // Marking → index interning is the hottest map of the whole flow
        // (one lookup per fired transition); FxHash beats SipHash here by a
        // wide margin and markings are never adversarial.
        let mut index: FxHashMap<Marking, usize> = FxHashMap::default();
        let mut markings: Vec<Marking> = Vec::new();
        // Edge list: (from, transition signal, dir, to).
        let mut edges: Vec<(usize, usize, nshot_sg::Dir, usize)> = Vec::new();
        index.insert(m0.clone(), 0);
        markings.push(m0);
        let mut queue: VecDeque<usize> = VecDeque::from([0]);
        let mut fired = vec![false; self.num_transitions()];
        while let Some(mi) = queue.pop_front() {
            let m = markings[mi].clone();
            for t in self.enabled(&m) {
                fired[t.0 as usize] = true;
                let next = self.fire(&m, t)?;
                let ni = match index.get(&next) {
                    Some(&ni) => ni,
                    None => {
                        let ni = markings.len();
                        if ni >= cap {
                            return Err(StgError::TooManyStates(cap));
                        }
                        index.insert(next.clone(), ni);
                        markings.push(next);
                        queue.push_back(ni);
                        ni
                    }
                };
                let tr = &self.transitions[t.0 as usize];
                edges.push((mi, tr.signal, tr.dir, ni));
            }
        }
        // A transition that fires in no reachable marking sits on a cycle
        // that carries no token — an unmarked cycle, or an entirely empty
        // initial marking. The state graph such a net elaborates to is
        // degenerate (the signal is frozen at its default), so reject it
        // with the authoring mistake named instead.
        if let Some(i) = fired.iter().position(|&f| !f) {
            return Err(StgError::DeadTransition(
                self.transition_name(crate::petri::TransId(i as u32)),
            ));
        }

        // --- Phase 2: infer signal values per marking by constraint
        // propagation (bidirectional, to a fixpoint).
        let ns = self.num_signals();
        let nm = markings.len();
        let mut value: Vec<Vec<Option<bool>>> = vec![vec![None; ns]; nm];
        let assign = |slot: &mut Option<bool>, v: bool, sig: &str| -> Result<bool, StgError> {
            match *slot {
                None => {
                    *slot = Some(v);
                    Ok(true)
                }
                Some(old) if old == v => Ok(false),
                Some(_) => Err(StgError::InconsistentSignal(sig.to_owned())),
            }
        };
        // Seed with the firing constraints.
        for &(from, sig, dir, to) in &edges {
            let name = &self.signals[sig].name;
            if from == to {
                // A marking-preserving transition would need the signal to
                // hold both values at once.
                return Err(StgError::InconsistentSignal(name.clone()));
            }
            let before = !dir.target_value();
            let (a, b) = split_two(&mut value, from, to);
            assign(&mut a[sig], before, name)?;
            assign(&mut b[sig], dir.target_value(), name)?;
        }
        // Propagate equalities for unrelated signals until stable.
        let mut changed = true;
        while changed {
            changed = false;
            for &(from, sig, _, to) in &edges {
                for s in 0..ns {
                    if s == sig || from == to {
                        continue;
                    }
                    let name = &self.signals[s].name;
                    let (a, b) = split_two(&mut value, from, to);
                    match (a[s], b[s]) {
                        (Some(v), _) => changed |= assign(&mut b[s], v, name)?,
                        (None, Some(v)) => changed |= assign(&mut a[s], v, name)?,
                        (None, None) => {}
                    }
                }
            }
        }
        // Unconstrained (never-firing, disconnected) signals default to 0.
        let codes: Vec<u64> = (0..nm)
            .map(|mi| {
                (0..ns).fold(0u64, |acc, s| {
                    acc | (u64::from(value[mi][s].unwrap_or(false)) << s)
                })
            })
            .collect();

        // --- Phase 3: build and validate the state graph.
        let mut b = SgBuilder::named(self.name());
        let sig_ids: Vec<_> = self
            .signals
            .iter()
            .map(|s| b.signal(&s.name, s.kind))
            .collect();
        let state_ids: Vec<_> = codes.iter().map(|&c| b.fresh_state(c)).collect();
        for &(from, sig, dir, to) in &edges {
            b.edge_states(
                state_ids[from],
                (sig_ids[sig], dir.target_value()),
                state_ids[to],
            )?;
        }
        Ok(b.build_with_initial(state_ids[0])?)
    }
}

/// Mutable access to two distinct rows of a table (helper for the
/// propagation loop). When `a == b`, returns the same row twice via a split
/// that still borrows safely.
fn split_two<T>(v: &mut [Vec<T>], a: usize, b: usize) -> (&mut Vec<T>, &mut Vec<T>) {
    assert_ne!(a, b, "self-loop edges are filtered before calling split_two");
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_stg;
    use crate::StgError;

    #[test]
    fn handshake_elaborates_to_four_states() {
        let stg = parse_stg(
            ".model hs\n.inputs r\n.outputs g\n.graph\nr+ g+\ng+ r-\nr- g-\ng- r+\n.marking { <g-,r+> }\n.end",
        )
        .unwrap();
        let sg = stg.elaborate().unwrap();
        assert_eq!(sg.num_states(), 4);
        assert!(sg.check_csc().is_ok());
        assert!(sg.check_semi_modular().is_ok());
        assert!(sg.is_distributive());
        // Initial marking enables r+, so r = 0 and g = 0 initially.
        assert_eq!(sg.code(sg.initial()), 0);
    }

    #[test]
    fn concurrency_gives_diamond() {
        // Two concurrent outputs after one input: a+ || b+ diamond.
        let stg = parse_stg(
            ".model conc\n.inputs r\n.outputs a b\n.graph\nr+ a+ b+\na+ r-\nb+ r-\nr- a- b-\na- r+\nb- r+\n.marking { <b-,r+> <a-,r+> }\n.end",
        )
        .unwrap();
        let sg = stg.elaborate().unwrap();
        // r+ (1) → {a+,b+} diamond (4 states incl. join) … total 8.
        assert_eq!(sg.num_states(), 8);
        assert!(sg.check_semi_modular().is_ok());
        assert!(sg.check_csc().is_ok());
    }

    #[test]
    fn input_choice_elaborates() {
        // Free choice at p0 between a+ and b+; each branch has its own c
        // occurrence (c+ / c+/2), the canonical OR shape.
        let stg = parse_stg(
            ".model choice\n.inputs a b\n.outputs c\n.graph\np0 a+ b+\na+ c+\nb+ c+/2\nc+ a-\nc+/2 b-\na- c-\nb- c-/2\nc- p0\nc-/2 p0\n.marking { p0 }\n.end",
        )
        .unwrap();
        let sg = stg.elaborate().unwrap();
        assert_eq!(sg.num_states(), 7);
        assert!(sg.check_semi_modular().is_ok());
        assert!(sg.check_csc().is_ok(), "both 001 markings excite -c");
        // Two falling excitation regions for c (one per branch).
        let c = sg.signal_by_name("c").unwrap();
        let regions = sg.regions_of(c);
        use nshot_sg::Dir;
        assert_eq!(regions.excitation_of(Dir::Fall).count(), 2);
        assert_eq!(regions.excitation_of(Dir::Rise).count(), 2);
    }

    #[test]
    fn unbounded_net_is_rejected() {
        // A producer with no consumer accumulates tokens.
        let stg = parse_stg(
            ".model bad\n.outputs a\n.graph\np a+\na+ p q\na- q\nq a-\n.marking { p }\n.end",
        )
        .unwrap();
        let err = stg.elaborate().unwrap_err();
        assert!(
            matches!(err, StgError::Unbounded { .. } | StgError::TooManyStates(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn inconsistent_stg_is_rejected() {
        // a+ followed by a+ again without a- in between.
        let stg = parse_stg(
            ".model inc\n.outputs a\n.graph\na+ a+/2\na+/2 a-\na- a+\n.marking { <a-,a+> }\n.end",
        )
        .unwrap();
        let err = stg.elaborate().unwrap_err();
        assert!(
            matches!(err, StgError::InconsistentSignal(_) | StgError::Sg(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn state_cap_is_enforced() {
        // 6 concurrent toggling outputs → 2^6 diamond states exceed cap 10.
        let mut text = String::from(".model big\n.outputs");
        for i in 0..6 {
            text.push_str(&format!(" s{i}"));
        }
        text.push_str("\n.graph\n");
        for i in 0..6 {
            text.push_str(&format!("s{i}+ s{i}-\ns{i}- s{i}+\n"));
        }
        text.push_str(".marking {");
        for i in 0..6 {
            text.push_str(&format!(" <s{i}-,s{i}+>"));
        }
        text.push_str(" }\n.end");
        let stg = parse_stg(&text).unwrap();
        assert!(matches!(
            stg.elaborate_with_cap(10),
            Err(StgError::TooManyStates(10))
        ));
        // And with a generous cap it elaborates to 4^6/…: each toggler has 2
        // phases, so 2^6 = 64 states.
        let sg = stg.elaborate().unwrap();
        assert_eq!(sg.num_states(), 64);
    }
}
