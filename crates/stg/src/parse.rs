//! Parser for the `.g` (astg) interchange format.

use crate::error::StgError;
use crate::petri::{PlaceId, Stg, TransId};
use nshot_sg::{Dir, SignalKind};
use std::collections::HashMap;

/// Parse an STG from the classic `.g` format:
///
/// ```text
/// .model example
/// .inputs a
/// .outputs b
/// .graph
/// a+ b+         # arc(s): a+ → b+ through an implicit place
/// b+ a-
/// a- b-
/// b- a+
/// .marking { <b-,a+> }
/// .end
/// ```
///
/// Supported features: implicit places (`t1 t2` arcs), explicit places (any
/// graph token that is not a signal edge), occurrence indices (`a+/2`),
/// multi-token markings (`p=2`), markings on implicit places (`<t1,t2>`),
/// `.internal` signals and `#` comments.
///
/// # Errors
///
/// [`StgError::Parse`] describes the offending line.
pub fn parse_stg(text: &str) -> Result<Stg, StgError> {
    let _span = nshot_obs::span(nshot_obs::Stage::Parse);
    let mut stg = Stg::new("stg");
    let mut kinds: HashMap<String, SignalKind> = HashMap::new();
    let mut declared: Vec<(String, SignalKind)> = Vec::new();
    let mut in_graph = false;
    let mut graph_lines: Vec<(usize, Vec<String>)> = Vec::new();
    let mut marking_tokens: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".model").or_else(|| line.strip_prefix(".name")) {
            stg = Stg::new(rest.trim());
            continue;
        }
        if let Some(rest) = line.strip_prefix(".inputs") {
            for n in rest.split_whitespace() {
                declared.push((n.to_owned(), SignalKind::Input));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(".outputs") {
            for n in rest.split_whitespace() {
                declared.push((n.to_owned(), SignalKind::Output));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(".internal") {
            for n in rest.split_whitespace() {
                declared.push((n.to_owned(), SignalKind::Internal));
            }
            continue;
        }
        if line.starts_with(".graph") {
            in_graph = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix(".marking") {
            in_graph = false;
            let inner = rest.trim().trim_start_matches('{').trim_end_matches('}');
            // Tokenize respecting `<a+,b+>` groups.
            let mut cur = String::new();
            let mut depth = 0usize;
            for ch in inner.chars() {
                match ch {
                    '<' => {
                        depth += 1;
                        cur.push(ch);
                    }
                    '>' => {
                        depth = depth.saturating_sub(1);
                        cur.push(ch);
                    }
                    c if c.is_whitespace() && depth == 0 => {
                        if !cur.is_empty() {
                            marking_tokens.push((lineno + 1, std::mem::take(&mut cur)));
                        }
                    }
                    c => cur.push(c),
                }
            }
            if !cur.is_empty() {
                marking_tokens.push((lineno + 1, cur));
            }
            continue;
        }
        if line.starts_with(".end") {
            break;
        }
        if line.starts_with('.') {
            // Ignore unknown dot directives (e.g. `.dummy`, which we reject
            // below if actually used).
            continue;
        }
        if in_graph {
            graph_lines.push((
                lineno + 1,
                line.split_whitespace().map(str::to_owned).collect(),
            ));
        } else {
            return Err(StgError::Parse {
                line: lineno + 1,
                message: format!("unexpected line outside .graph: '{line}'"),
            });
        }
    }

    // Register declared signals in declaration order.
    for (name, kind) in &declared {
        if kinds.contains_key(name) {
            return Err(StgError::Parse {
                line: 0,
                message: format!("duplicate signal '{name}'"),
            });
        }
        kinds.insert(name.clone(), *kind);
        stg.add_signal(name, *kind);
    }

    // First pass: create all transitions and explicit places named in the
    // graph section.
    let mut trans_ids: HashMap<String, TransId> = HashMap::new();
    let mut place_ids: HashMap<String, PlaceId> = HashMap::new();
    let token_kind = |stg: &mut Stg,
                          tok: &str,
                          line: usize,
                          trans_ids: &mut HashMap<String, TransId>,
                          place_ids: &mut HashMap<String, PlaceId>|
     -> Result<Node, StgError> {
        if let Some((sig, dir, occ)) = split_edge_token(tok) {
            if let Some(idx) = stg.signal_index(sig) {
                let key = tok.to_owned();
                let id = match trans_ids.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = stg.add_transition(idx, dir, occ);
                        trans_ids.insert(key, id);
                        id
                    }
                };
                return Ok(Node::Trans(id));
            }
            return Err(StgError::Parse {
                line,
                message: format!("transition '{tok}' references undeclared signal '{sig}'"),
            });
        }
        // Not a signal edge → explicit place.
        let id = match place_ids.get(tok) {
            Some(&id) => id,
            None => {
                let id = stg.add_place(tok, 0);
                place_ids.insert(tok.to_owned(), id);
                id
            }
        };
        Ok(Node::Place(id))
    };

    #[derive(Clone, Copy)]
    enum Node {
        Trans(TransId),
        Place(PlaceId),
    }

    // The `.g` format has no arc weights: a repeated arc is always an
    // authoring mistake (and a silent one — the duplicate implicit place
    // never receives a token, so the target quietly dies).
    let mut seen_arcs: std::collections::HashSet<(u8, u32, u32)> = std::collections::HashSet::new();
    for (line, tokens) in &graph_lines {
        if tokens.len() < 2 {
            return Err(StgError::Parse {
                line: *line,
                message: "graph line needs a source and at least one target".into(),
            });
        }
        let src = token_kind(&mut stg, &tokens[0], *line, &mut trans_ids, &mut place_ids)?;
        for tok in &tokens[1..] {
            let dst = token_kind(&mut stg, tok, *line, &mut trans_ids, &mut place_ids)?;
            let arc_key = match (src, dst) {
                (Node::Trans(a), Node::Trans(b)) => (0u8, a.0, b.0),
                (Node::Trans(a), Node::Place(p)) => (1, a.0, p.0),
                (Node::Place(p), Node::Trans(b)) => (2, p.0, b.0),
                (Node::Place(p), Node::Place(q)) => (3, p.0, q.0),
            };
            if !seen_arcs.insert(arc_key) {
                return Err(StgError::Parse {
                    line: *line,
                    message: format!("duplicate arc '{} {tok}'", tokens[0]),
                });
            }
            match (src, dst) {
                (Node::Trans(a), Node::Trans(b)) => {
                    stg.connect(a, b, 0);
                }
                (Node::Trans(a), Node::Place(p)) => stg.arc_tp(a, p),
                (Node::Place(p), Node::Trans(b)) => stg.arc_pt(p, b),
                (Node::Place(_), Node::Place(_)) => {
                    return Err(StgError::Parse {
                        line: *line,
                        message: "place-to-place arcs are not allowed".into(),
                    })
                }
            }
        }
    }

    // Apply the marking.
    for (line, tok) in &marking_tokens {
        let (name, count) = match tok.split_once('=') {
            Some((n, c)) => (
                n,
                c.parse::<u8>().map_err(|_| StgError::Parse {
                    line: *line,
                    message: format!("bad token count in '{tok}'"),
                })?,
            ),
            None => (tok.as_str(), 1u8),
        };
        if let Some(inner) = name.strip_prefix('<').and_then(|s| s.strip_suffix('>')) {
            let (a, b) = inner.split_once(',').ok_or_else(|| StgError::Parse {
                line: *line,
                message: format!("bad implicit place '{name}'"),
            })?;
            let ta = stg
                .transition_by_name(a.trim())
                .ok_or_else(|| StgError::Parse {
                    line: *line,
                    message: format!("unknown transition '{a}' in marking"),
                })?;
            let tb = stg
                .transition_by_name(b.trim())
                .ok_or_else(|| StgError::Parse {
                    line: *line,
                    message: format!("unknown transition '{b}' in marking"),
                })?;
            let p = stg.place_between(ta, tb).ok_or_else(|| StgError::Parse {
                line: *line,
                message: format!("no place between {a} and {b}"),
            })?;
            stg.set_tokens(p, count);
        } else if let Some(p) = stg.place_by_name(name) {
            stg.set_tokens(p, count);
        } else {
            return Err(StgError::Parse {
                line: *line,
                message: format!("unknown place '{name}' in marking"),
            });
        }
    }

    stg.check_structure()?;
    Ok(stg)
}

/// Split a signal-edge token like `req+`, `ack-/2` into (signal, dir, occ).
fn split_edge_token(tok: &str) -> Option<(&str, Dir, u32)> {
    let (edge, occ) = match tok.split_once('/') {
        Some((e, o)) => (e, o.parse::<u32>().ok()?),
        None => (tok, 0),
    };
    let dir = match edge.chars().last()? {
        '+' => Dir::Rise,
        '-' => Dir::Fall,
        _ => return None,
    };
    let sig = &edge[..edge.len() - 1];
    if sig.is_empty() {
        return None;
    }
    Some((sig, dir, occ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const HANDSHAKE: &str = "
        .model hs
        .inputs r
        .outputs g
        .graph
        r+ g+
        g+ r-
        r- g-
        g- r+
        .marking { <g-,r+> }
        .end
    ";

    #[test]
    fn parses_handshake() {
        let stg = parse_stg(HANDSHAKE).unwrap();
        assert_eq!(stg.name(), "hs");
        assert_eq!(stg.num_signals(), 2);
        assert_eq!(stg.num_transitions(), 4);
        assert_eq!(stg.num_places(), 4);
        let m0 = stg.initial_marking();
        let enabled = stg.enabled(&m0);
        assert_eq!(enabled.len(), 1);
        assert_eq!(stg.transition_name(enabled[0]), "r+");
    }

    #[test]
    fn occurrence_indices() {
        let stg = parse_stg(
            ".inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b+/2...
            ",
        );
        // Malformed tail — must be a parse error, not a panic.
        assert!(stg.is_err());
        let stg = parse_stg(
            ".inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+/2\na+/2 b+/2\nb+/2 a-/2\na-/2 b-/2\nb-/2 a+\n.marking { <b-/2,a+> }\n.end",
        )
        .unwrap();
        assert_eq!(stg.num_transitions(), 8);
    }

    #[test]
    fn explicit_places_and_choice() {
        // A free-choice place feeding two input transitions.
        let stg = parse_stg(
            ".inputs a b\n.outputs c\n.graph\np0 a+ b+\na+ c+\nb+ c+\nc+ p1\np1 a-\na- c-\nc- p0\n.marking { p0 }\n.end",
        )
        .unwrap();
        assert!(stg.place_by_name("p0").is_some());
        let m0 = stg.initial_marking();
        let enabled: Vec<String> = stg
            .enabled(&m0)
            .into_iter()
            .map(|t| stg.transition_name(t))
            .collect();
        assert_eq!(enabled, vec!["a+", "b+"]);
    }

    #[test]
    fn marking_with_counts() {
        let stg = parse_stg(
            ".outputs a\n.graph\np a+\na+ p\n.marking { p=2 }\n.end",
        )
        .unwrap();
        let p = stg.place_by_name("p").unwrap();
        assert_eq!(stg.initial_marking().tokens(p), 2);
    }

    #[test]
    fn undeclared_signal_is_error() {
        let err = parse_stg(".inputs a\n.graph\na+ q+\nq+ a-\n.marking { }\n.end").unwrap_err();
        assert!(matches!(err, StgError::Parse { .. }));
    }

    #[test]
    fn marking_on_missing_place_is_error() {
        let err =
            parse_stg(".inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <a+,a-> }\n.end")
                .unwrap_err();
        assert!(matches!(err, StgError::Parse { .. }));
    }
}
