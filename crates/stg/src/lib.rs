//! Signal Transition Graphs (STGs): the Petri-net front-end of the flow.
//!
//! The paper's method is formulated at the state-graph level precisely so it
//! applies to any higher-level formalism that elaborates to state graphs; the
//! most widely used one is Chu's Signal Transition Graph \[2\]. This crate
//! provides:
//!
//! * [`Stg`] — a labelled Petri net whose transitions are signal edges
//!   (`a+`, `a-`, with occurrence indices `a+/2`);
//! * a parser for the classic `.g` / astg interchange format
//!   ([`parse_stg`]);
//! * token-game semantics (enabledness, firing) and
//! * reachability elaboration into a validated
//!   [`nshot_sg::StateGraph`] ([`Stg::elaborate`]), inferring initial signal
//!   values from the first transition each signal can fire.
//!
//! # Example
//!
//! ```
//! let stg = nshot_stg::parse_stg("
//!     .model xyz
//!     .inputs a
//!     .outputs b
//!     .graph
//!     a+ b+
//!     b+ a-
//!     a- b-
//!     b- a+
//!     .marking { <b-,a+> }
//!     .end
//! ")?;
//! let sg = stg.elaborate()?;
//! assert_eq!(sg.num_states(), 4);
//! # Ok::<(), nshot_stg::StgError>(())
//! ```

mod analysis;
mod emit;
mod error;
mod parse;
mod petri;
mod reach;

pub use analysis::{NetClass, StgReport};
pub use emit::{sg_to_g_text, sg_to_stg};
pub use error::StgError;
pub use parse::parse_stg;
pub use petri::{Marking, PlaceId, Stg, TransId};

#[cfg(all(test, feature = "proptest"))]
mod proptests;
