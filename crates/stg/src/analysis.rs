//! Structural analyses of STGs: net-class classification, liveness and
//! safeness via the token game, and DOT export.
//!
//! These are the standard sanity checks an STG front-end offers: marked
//! graphs (no choice) and free-choice nets cover most published
//! specifications; safeness (1-boundedness) is what the elaboration
//! assumes; liveness rules out specifications that deadlock.

use crate::error::StgError;
use crate::petri::{Marking, PlaceId, Stg, TransId};
use std::collections::{HashMap, VecDeque};

/// Structural class of the underlying net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetClass {
    /// Every place has at most one producer and one consumer: no choice at
    /// all (pure concurrency/causality).
    MarkedGraph,
    /// Every choice place's consumers have that place as their only input:
    /// choices are free (never controlled by concurrency).
    FreeChoice,
    /// Anything else.
    General,
}

/// Result of the behavioural checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StgReport {
    /// Structural class.
    pub class: NetClass,
    /// `true` if no reachable place ever holds more than one token.
    pub safe: bool,
    /// `true` if from every reachable marking every transition can
    /// eventually fire again.
    pub live: bool,
    /// Number of reachable markings explored.
    pub markings: usize,
}

impl Stg {
    /// Classify the net structurally.
    pub fn net_class(&self) -> NetClass {
        let mut marked_graph = true;
        let mut free_choice = true;
        for (pi, p) in self.places.iter().enumerate() {
            if p.post.len() > 1 {
                marked_graph = false;
                // Free choice: each consumer of a choice place must have
                // exactly this place as its preset.
                for &t in &p.post {
                    let pre = &self.transitions[t.0 as usize].pre;
                    if pre.len() != 1 || pre[0] != PlaceId(pi as u32) {
                        free_choice = false;
                    }
                }
            }
            if p.pre.len() > 1 {
                marked_graph = false;
            }
        }
        if marked_graph {
            NetClass::MarkedGraph
        } else if free_choice {
            NetClass::FreeChoice
        } else {
            NetClass::General
        }
    }

    /// Explore the token game and report class, safeness and liveness.
    ///
    /// # Errors
    ///
    /// Propagates [`StgError`] from the exploration (unbounded nets, caps).
    pub fn analyze(&self) -> Result<StgReport, StgError> {
        self.check_structure()?;
        let m0 = self.initial_marking();
        let mut safe = m0.0.iter().all(|&tok| tok <= 1);
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut markings = vec![m0.clone()];
        index.insert(m0, 0);
        let mut succ: Vec<Vec<(TransId, usize)>> = Vec::new();
        let mut queue = VecDeque::from([0usize]);
        while let Some(mi) = queue.pop_front() {
            let m = markings[mi].clone();
            let mut out = Vec::new();
            for t in self.enabled(&m) {
                let next = self.fire(&m, t)?;
                if next.0.iter().any(|&tok| tok > 1) {
                    safe = false;
                }
                let ni = *index.entry(next.clone()).or_insert_with(|| {
                    markings.push(next);
                    queue.push_back(markings.len() - 1);
                    markings.len() - 1
                });
                out.push((t, ni));
            }
            succ.resize(succ.len().max(mi + 1), Vec::new());
            succ[mi] = out;
            if markings.len() > 500_000 {
                return Err(StgError::TooManyStates(500_000));
            }
        }
        succ.resize(markings.len(), Vec::new());

        // Liveness: compute SCCs coarsely — the net is live iff every
        // transition fires inside every terminal SCC. For the controller
        // nets here a simpler check suffices and is exact for strongly
        // connected reachability graphs: (a) no deadlock marking, and
        // (b) every transition fires somewhere, and (c) the marking graph
        // is strongly connected (every marking can return to the initial
        // one).
        let deadlock_free = succ.iter().all(|s| !s.is_empty());
        let mut fired = vec![false; self.num_transitions()];
        for s in &succ {
            for &(t, _) in s {
                fired[t.0 as usize] = true;
            }
        }
        let all_fire = fired.iter().all(|&f| f);
        // Reverse reachability to marking 0.
        let mut reaches_initial = vec![false; markings.len()];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); markings.len()];
        for (mi, s) in succ.iter().enumerate() {
            for &(_, ni) in s {
                preds[ni].push(mi);
            }
        }
        let mut queue = VecDeque::from([0usize]);
        reaches_initial[0] = true;
        while let Some(mi) = queue.pop_front() {
            for &p in &preds[mi] {
                if !reaches_initial[p] {
                    reaches_initial[p] = true;
                    queue.push_back(p);
                }
            }
        }
        let strongly_connected = reaches_initial.iter().all(|&r| r);
        Ok(StgReport {
            class: self.net_class(),
            safe,
            live: deadlock_free && all_fire && strongly_connected,
            markings: markings.len(),
        })
    }

    /// Render the STG as Graphviz DOT (transitions as boxes, places as
    /// circles; implicit places are collapsed into arrows).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph stg {\n  rankdir=TB;\n");
        for (i, _) in self.transitions.iter().enumerate() {
            let t = TransId(i as u32);
            out.push_str(&format!(
                "  t{i} [shape=box, label=\"{}\"];\n",
                self.transition_name(t)
            ));
        }
        let marking = self.initial_marking();
        for (pi, p) in self.places.iter().enumerate() {
            let implicit = p.pre.len() == 1 && p.post.len() == 1;
            let tokens = marking.tokens(PlaceId(pi as u32));
            if implicit && tokens == 0 {
                // Collapse into a direct arc.
                out.push_str(&format!(
                    "  t{} -> t{};\n",
                    p.pre[0].0, p.post[0].0
                ));
            } else {
                let label = if tokens > 0 {
                    format!("{}", "●".repeat(tokens as usize))
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "  p{pi} [shape=circle, label=\"{label}\"];\n"
                ));
                for &t in &p.pre {
                    out.push_str(&format!("  t{} -> p{pi};\n", t.0));
                }
                for &t in &p.post {
                    out.push_str(&format!("  p{pi} -> t{};\n", t.0));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_stg;

    const HANDSHAKE: &str = ".model hs\n.inputs r\n.outputs g\n.graph\nr+ g+\ng+ r-\nr- g-\ng- r+\n.marking { <g-,r+> }\n.end";

    #[test]
    fn handshake_is_a_live_safe_marked_graph() {
        let stg = parse_stg(HANDSHAKE).unwrap();
        let report = stg.analyze().unwrap();
        assert_eq!(report.class, NetClass::MarkedGraph);
        assert!(report.safe);
        assert!(report.live);
        assert_eq!(report.markings, 4);
    }

    #[test]
    fn choice_net_is_free_choice() {
        let stg = parse_stg(
            ".model c\n.inputs a b\n.outputs y\n.graph\np0 a+ b+\na+ y+\nb+ y+/2\ny+ a-\ny+/2 b-\na- y-\nb- y-/2\ny- p0\ny-/2 p0\n.marking { p0 }\n.end",
        )
        .unwrap();
        let report = stg.analyze().unwrap();
        assert_eq!(report.class, NetClass::FreeChoice);
        assert!(report.safe);
        assert!(report.live);
    }

    #[test]
    fn controlled_choice_is_general() {
        // A choice place whose consumer also needs a second token: not FC.
        let stg = parse_stg(
            ".model g\n.inputs a b c\n.graph\np0 a+ b+\nq0 a+\na+ p0 q0\nb+ p0\n.marking { p0 q0 }\n.end",
        )
        .unwrap();
        assert_eq!(stg.net_class(), NetClass::General);
    }

    #[test]
    fn deadlocking_net_is_not_live() {
        // b+ consumes the only token and nothing returns it.
        let stg = parse_stg(
            ".model d\n.inputs a b\n.graph\np0 a+ b+\na+ p0\nb+ pdead\npdead b-\nb- pdead2\npdead2 b+\n.marking { p0 }\n.end",
        )
        .unwrap();
        let report = stg.analyze().unwrap();
        assert!(!report.live);
    }

    #[test]
    fn unsafe_net_is_detected() {
        // A 2-bounded (but not safe) token ring.
        let stg = parse_stg(
            ".model u\n.outputs a\n.graph\np a+\na+ a-\na- p\n.marking { p=2 }\n.end",
        )
        .unwrap();
        let report = stg.analyze().unwrap();
        assert!(!report.safe);
        assert!(report.live, "still live, just not 1-bounded");
    }

    #[test]
    fn dot_renders_transitions_and_marking() {
        let stg = parse_stg(HANDSHAKE).unwrap();
        let dot = stg.to_dot();
        assert!(dot.contains("t0 [shape=box, label=\"r+\"]"));
        assert!(dot.contains("●"), "initial token rendered");
        assert!(dot.contains("->"));
    }
}
