//! Error type for the STG crate.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing, firing or elaborating an STG.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StgError {
    /// Parse error with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// A transition was fired while not enabled.
    NotEnabled(String),
    /// A place exceeded the supported token bound during firing or
    /// elaboration (the net is unbounded or nearly so).
    Unbounded {
        /// The offending place.
        place: String,
    },
    /// The reachability graph exceeded the state cap.
    TooManyStates(usize),
    /// Structural problem (disconnected place, sourceless transition, …).
    Structural(String),
    /// A transition can never fire: its cycle carries no token (an unmarked
    /// cycle, or an entirely empty initial marking).
    DeadTransition(String),
    /// A signal fires inconsistently (two paths give it different values in
    /// the same marking), so no consistent state assignment exists.
    InconsistentSignal(String),
    /// The elaborated graph failed state-graph validation.
    Sg(nshot_sg::SgError),
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            StgError::NotEnabled(t) => write!(f, "transition {t} is not enabled"),
            StgError::Unbounded { place } => write!(f, "place {place} exceeds the token bound"),
            StgError::TooManyStates(n) => write!(f, "reachability exceeded {n} markings"),
            StgError::Structural(msg) => write!(f, "structural error: {msg}"),
            StgError::DeadTransition(t) => write!(
                f,
                "transition {t} can never fire (unmarked cycle or empty marking)"
            ),
            StgError::InconsistentSignal(s) => {
                write!(f, "signal {s} has no consistent value assignment")
            }
            StgError::Sg(e) => write!(f, "state graph validation failed: {e}"),
        }
    }
}

impl Error for StgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StgError::Sg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nshot_sg::SgError> for StgError {
    fn from(e: nshot_sg::SgError) -> Self {
        StgError::Sg(e)
    }
}
