//! Property tests: random marked-graph STGs elaborate to well-formed SGs.
//! Inputs come from the fixed-seed driver in `nshot_par::prop`.

use crate::Stg;
use nshot_par::prop;
use nshot_sg::{Dir, SignalKind};

/// Build a random *marked graph* (every place has one producer and one
/// consumer): a ring of handshaking stages. Stage `i` has signals `r_i`
/// (input if `kinds[i]`, else output) rising then falling, with the ring
/// closed by a single initial token. Marked graphs are choice-free, so the
/// elaboration is always consistent and semi-modular.
fn ring_stg(kinds: &[bool]) -> Stg {
    let mut stg = Stg::new("ring");
    let mut ts = Vec::new();
    for (i, &is_input) in kinds.iter().enumerate() {
        let kind = if is_input {
            SignalKind::Input
        } else {
            SignalKind::Output
        };
        let s = stg.add_signal(&format!("s{i}"), kind);
        let up = stg.add_transition(s, Dir::Rise, 0);
        let down = stg.add_transition(s, Dir::Fall, 0);
        ts.push((up, down));
    }
    // Chain: s0+ → s1+ → … → s(n-1)+ → s0- → s1- → … → s(n-1)- → s0+.
    let order: Vec<_> = ts
        .iter()
        .map(|&(u, _)| u)
        .chain(ts.iter().map(|&(_, d)| d))
        .collect();
    for w in 0..order.len() {
        let next = (w + 1) % order.len();
        stg.connect(order[w], order[next], u8::from(next == 0));
    }
    stg
}

#[test]
fn ring_elaboration_is_sound() {
    prop::check("stg_ring_elaboration_sound", |g| {
        let kinds = g.vec_bool(1, 6);
        let stg = ring_stg(&kinds);
        stg.check_structure().expect("rings are structurally fine");
        let sg = stg.elaborate().expect("marked graphs are consistent");
        // A sequential ring of n stages visits 2n markings.
        assert_eq!(sg.num_states(), 2 * kinds.len());
        assert!(sg.check_csc().is_ok());
        assert!(sg.check_semi_modular().is_ok());
        assert!(sg.is_distributive());
        assert!(sg.check_output_trapping());
        // The elaborated code of the initial state has every signal at 0:
        // the first transition of each signal is rising.
        assert_eq!(sg.code(sg.initial()), 0);
    });
}

#[test]
fn elaboration_is_deterministic() {
    prop::check("stg_elaboration_deterministic", |g| {
        let kinds = g.vec_bool(1, 4);
        let stg = ring_stg(&kinds);
        let a = stg.elaborate().expect("consistent");
        let b = stg.elaborate().expect("consistent");
        assert_eq!(a.num_states(), b.num_states());
        let codes_a: std::collections::BTreeSet<u64> =
            a.state_ids().map(|s| a.code(s)).collect();
        let codes_b: std::collections::BTreeSet<u64> =
            b.state_ids().map(|s| b.code(s)).collect();
        assert_eq!(codes_a, codes_b);
    });
}
