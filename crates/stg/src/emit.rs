//! Canonical `.g` emission.
//!
//! [`Stg::to_g_text`] renders a net back into the classic `.g` format in a
//! *canonical* form: signal declarations grouped by kind, graph lines
//! ordered by a transition key that depends only on the net itself (signal
//! declaration rank, direction, occurrence index) — never on internal ids —
//! and a sorted marking. Canonicality gives byte stability: parsing the
//! emitted text and emitting again reproduces the same bytes, which is what
//! lets the generator and the shrinker treat `.g` artifacts as
//! content-addressable keys.
//!
//! [`sg_to_stg`] encodes a [`StateGraph`] as the equivalent state-machine
//! net (one place per reachable state, one transition per edge, occurrence
//! indices distinguishing repeated labels); [`sg_to_g_text`] composes the
//! two, so state-graph specifications gain a `.g` serialization whose token
//! game elaborates back to the original graph.

use crate::petri::{PlaceId, Stg, TransId};
use nshot_sg::{Dir, SignalKind, StateGraph};
use std::collections::HashMap;

/// The canonical sort key of a transition: signal rank in the emitted
/// declaration order (inputs, then outputs, then internals), direction,
/// occurrence index. Independent of internal transition ids, so emission
/// order survives a parse round-trip.
fn canonical_order(stg: &Stg) -> (Vec<usize>, Vec<TransId>) {
    // Rank per signal index: position in the grouped declaration order.
    let mut rank = vec![0usize; stg.signals.len()];
    let mut next = 0usize;
    for kind in [SignalKind::Input, SignalKind::Output, SignalKind::Internal] {
        for (i, s) in stg.signals.iter().enumerate() {
            if s.kind == kind {
                rank[i] = next;
                next += 1;
            }
        }
    }
    let mut order: Vec<TransId> = (0..stg.transitions.len() as u32).map(TransId).collect();
    order.sort_by_key(|&t| {
        let tr = &stg.transitions[t.0 as usize];
        (
            rank[tr.signal],
            matches!(tr.dir, Dir::Fall) as u8,
            tr.occurrence,
            t.0,
        )
    });
    (rank, order)
}

/// `true` if `name` survives the `.g` tokenizer as a *place* reference: one
/// whitespace-free token that is not a directive, not a signal-edge token,
/// and not marking syntax.
fn is_safe_place_name(name: &str) -> bool {
    if name.is_empty()
        || name.starts_with('.')
        || name
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '<' | '>' | '{' | '}' | '=' | '#' | ','))
    {
        return false;
    }
    // Tokens whose pre-`/` part ends in +/- parse as signal edges.
    let edge = name.split_once('/').map_or(name, |(e, _)| e);
    !(edge.ends_with('+') || edge.ends_with('-'))
}

impl Stg {
    /// Serialize to canonical `.g` text (see the module docs).
    ///
    /// Places with exactly one producer and one consumer — and no sibling
    /// place joining the same transition pair — are emitted as implicit
    /// arcs (`t1 t2`, marked as `<t1,t2>`); every other place is emitted
    /// explicitly, renamed to `xp{k}` when its current name would not
    /// survive the tokenizer.
    ///
    /// The output is a fixpoint: `parse_stg(s.to_g_text())` emits the same
    /// bytes again (covered by round-trip tests).
    pub fn to_g_text(&self) -> String {
        let (rank, trans_order) = canonical_order(self);
        let tkey = |t: TransId| {
            let tr = &self.transitions[t.0 as usize];
            (
                rank[tr.signal],
                matches!(tr.dir, Dir::Fall) as u8,
                tr.occurrence,
                t.0,
            )
        };

        // Classify places. Implicit-emittable: one pre, one post, and the
        // only such place between its (pre, post) pair — the parser can
        // address at most one implicit place per pair in the marking.
        let mut pair_count: HashMap<(u32, u32), usize> = HashMap::new();
        for p in &self.places {
            if let (&[pre], &[post]) = (p.pre.as_slice(), p.post.as_slice()) {
                *pair_count.entry((pre.0, post.0)).or_insert(0) += 1;
            }
        }
        let implicit = |p: &crate::petri::PlaceDecl| -> bool {
            matches!((p.pre.as_slice(), p.post.as_slice()), (&[pre], &[post])
                if pair_count[&(pre.0, post.0)] == 1)
        };

        // Canonical explicit-place names: keep safe, unique names; rename
        // the rest deterministically (in place order, skipping taken
        // names). Duplicates must rename — the parser interns places by
        // token, so two lines sharing a name would merge into one place.
        let mut explicit_name: Vec<Option<String>> = vec![None; self.places.len()];
        let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (i, p) in self.places.iter().enumerate() {
            if !implicit(p) && is_safe_place_name(&p.name) && used.insert(p.name.clone()) {
                explicit_name[i] = Some(p.name.clone());
            }
        }
        let mut next_fresh = 0usize;
        for (i, p) in self.places.iter().enumerate() {
            if implicit(p) || explicit_name[i].is_some() {
                continue;
            }
            let fresh = loop {
                let candidate = format!("xp{next_fresh}");
                next_fresh += 1;
                if used.insert(candidate.clone()) {
                    break candidate;
                }
            };
            explicit_name[i] = Some(fresh);
        }

        let mut out = String::new();
        let model = self.name.replace(['#', '\n', '\r'], "_");
        out.push_str(&format!(
            ".model {}\n",
            if model.trim().is_empty() { "stg" } else { model.trim() }
        ));
        for (tag, kind) in [
            (".inputs", SignalKind::Input),
            (".outputs", SignalKind::Output),
            (".internal", SignalKind::Internal),
        ] {
            let names: Vec<&str> = self
                .signals
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.name.as_str())
                .collect();
            if !names.is_empty() {
                out.push_str(&format!("{tag} {}\n", names.join(" ")));
            }
        }
        out.push_str(".graph\n");

        // Transition lines: implicit successors (canonical transition
        // order), then explicit post-places (canonical name order).
        for &t in &trans_order {
            let tr = &self.transitions[t.0 as usize];
            let mut succs: Vec<TransId> = Vec::new();
            let mut posts: Vec<&str> = Vec::new();
            for &p in &tr.post {
                let place = &self.places[p.0 as usize];
                if implicit(place) {
                    succs.push(place.post[0]);
                } else {
                    posts.push(explicit_name[p.0 as usize].as_deref().expect("explicit"));
                }
            }
            succs.sort_by_key(|&u| tkey(u));
            posts.sort_unstable();
            if succs.is_empty() && posts.is_empty() {
                continue;
            }
            let mut line = self.transition_name(t);
            for u in succs {
                line.push(' ');
                line.push_str(&self.transition_name(u));
            }
            for p in posts {
                line.push(' ');
                line.push_str(p);
            }
            out.push_str(&line);
            out.push('\n');
        }

        // Explicit place lines (place → consumers), canonical name order.
        let mut explicit_ids: Vec<PlaceId> = (0..self.places.len() as u32)
            .map(PlaceId)
            .filter(|p| explicit_name[p.0 as usize].is_some())
            .collect();
        explicit_ids.sort_by(|a, b| {
            explicit_name[a.0 as usize].cmp(&explicit_name[b.0 as usize])
        });
        for &p in &explicit_ids {
            let place = &self.places[p.0 as usize];
            if place.post.is_empty() {
                continue;
            }
            let mut posts = place.post.clone();
            posts.sort_by_key(|&u| tkey(u));
            let mut line = explicit_name[p.0 as usize].clone().expect("explicit");
            for u in posts {
                line.push(' ');
                line.push_str(&self.transition_name(u));
            }
            out.push_str(&line);
            out.push('\n');
        }

        // Marking: sorted rendered tokens.
        let mut marks: Vec<String> = Vec::new();
        for (i, (p, &tok)) in self.places.iter().zip(&self.initial).enumerate() {
            if tok == 0 {
                continue;
            }
            let name = match &explicit_name[i] {
                Some(n) => n.clone(),
                None => format!(
                    "<{},{}>",
                    self.transition_name(p.pre[0]),
                    self.transition_name(p.post[0])
                ),
            };
            marks.push(if tok == 1 { name } else { format!("{name}={tok}") });
        }
        marks.sort_unstable();
        out.push_str(&format!(".marking {{ {} }}\n.end\n", marks.join(" ")));
        out
    }
}

/// Encode a [`StateGraph`] as its state-machine net: one place per
/// reachable state (`p{i}` in reachable order), one transition per edge,
/// occurrence indices (`/2`, `/3`, …) distinguishing repeated labels in
/// source-state order. The net's token game is exactly the original graph,
/// so [`Stg::elaborate`] recovers it (up to the parser's grouped signal
/// renumbering).
pub fn sg_to_stg(sg: &StateGraph) -> Stg {
    let mut stg = Stg::new(sg.name());
    let sig_idx: Vec<usize> = sg
        .signal_ids()
        .map(|s| stg.add_signal(sg.signal_name(s), sg.signal_kind(s)))
        .collect();

    let reachable = sg.reachable();
    let mut place_of = vec![None; sg.num_states()];
    for (i, &s) in reachable.iter().enumerate() {
        place_of[s.index()] = Some(stg.add_place(
            &format!("p{i}"),
            u8::from(s == sg.initial()),
        ));
    }

    // Occurrence indices are assigned in canonical enumeration order:
    // source state ascending, stored edge order within a state.
    let mut label_seen: HashMap<(u16, bool), u32> = HashMap::new();
    for &s in reachable {
        let src = place_of[s.index()].expect("reachable");
        for &(t, dst) in sg.successors(s) {
            let key = (t.signal.index() as u16, t.dir.target_value());
            let seen = label_seen.entry(key).or_insert(0);
            // First edge of a label keeps the plain name (occurrence 0);
            // later ones get `/2`, `/3`, … matching `.g` conventions.
            let occ = if *seen == 0 { 0 } else { *seen + 1 };
            *seen += 1;
            let trans = stg.add_transition(sig_idx[t.signal.index()], t.dir, occ);
            stg.arc_pt(src, trans);
            stg.arc_tp(trans, place_of[dst.index()].expect("reachable"));
        }
    }
    stg
}

/// [`sg_to_stg`] rendered through the canonical emitter: the `.g`
/// serialization of a state-graph specification.
pub fn sg_to_g_text(sg: &StateGraph) -> String {
    sg_to_stg(sg).to_g_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_stg;
    use nshot_sg::{parse_sg, SgBuilder};

    // Already in canonical form: graph lines sorted by (signal rank, dir).
    const HANDSHAKE_G: &str = ".model hs\n.inputs r\n.outputs g\n.graph\nr+ g+\nr- g-\ng+ r-\ng- r+\n.marking { <g-,r+> }\n.end\n";

    #[test]
    fn emit_is_byte_stable_for_implicit_nets() {
        let stg = parse_stg(HANDSHAKE_G).unwrap();
        let once = stg.to_g_text();
        let twice = parse_stg(&once).unwrap().to_g_text();
        assert_eq!(once, twice);
        // And the canonical form of the already-canonical source is itself.
        assert_eq!(once, HANDSHAKE_G);
    }

    #[test]
    fn emit_preserves_explicit_choice_places() {
        let src = ".model choice\n.inputs a b\n.outputs c\n.graph\np0 a+ b+\na+ c+\nb+ c+/2\nc+ a-\nc+/2 b-\na- c-\nb- c-/2\nc- p0\nc-/2 p0\n.marking { p0 }\n.end";
        let stg = parse_stg(src).unwrap();
        let text = stg.to_g_text();
        let reparsed = parse_stg(&text).unwrap();
        assert_eq!(reparsed.num_places(), stg.num_places());
        assert_eq!(reparsed.num_transitions(), stg.num_transitions());
        assert_eq!(text, reparsed.to_g_text());
        // The free-choice place must stay a single shared place, not be
        // split into per-branch implicit places.
        assert!(reparsed.place_by_name("p0").is_some());
        let sg = stg.elaborate().unwrap();
        let sg2 = reparsed.elaborate().unwrap();
        assert_eq!(sg.num_states(), sg2.num_states());
    }

    #[test]
    fn unsafe_place_names_are_canonicalized() {
        let mut stg = Stg::new("weird");
        let a = stg.add_signal("a", nshot_sg::SignalKind::Output);
        let up = stg.add_transition(a, Dir::Rise, 0);
        let down = stg.add_transition(a, Dir::Fall, 0);
        // A fork place with a name the tokenizer would mangle.
        let p = stg.add_place("bad name=1", 1);
        stg.arc_pt(p, up);
        stg.arc_tp(up, p);
        let q = stg.add_place("also<bad>", 0);
        stg.arc_tp(up, q);
        stg.arc_pt(q, down);
        let r = stg.add_place("<a+,a->", 0); // sibling pair: both explicit
        stg.arc_tp(up, r);
        stg.arc_pt(r, down);
        let text = stg.to_g_text();
        let reparsed = parse_stg(&text).unwrap();
        assert_eq!(reparsed.num_places(), 3);
        assert_eq!(text, reparsed.to_g_text());
    }

    #[test]
    fn sg_roundtrips_through_state_machine_net() {
        let sg = parse_sg(
            ".name hs\n.inputs r\n.outputs g\n.initial 00\n00 +r 10\n10 +g 11\n11 -r 01\n01 -g 00\n",
        )
        .unwrap();
        let text = sg_to_g_text(&sg);
        let stg = parse_stg(&text).unwrap();
        assert_eq!(text, stg.to_g_text(), "canonical form is a fixpoint");
        let sg2 = stg.elaborate().unwrap();
        assert_eq!(sg2.num_states(), sg.num_states());
        assert_eq!(sg2.num_signals(), sg.num_signals());
        assert_eq!(sg2.code(sg2.initial()), sg.code(sg.initial()));
        assert!(sg2.check_csc().is_ok());
    }

    #[test]
    fn sg_with_repeated_labels_gets_occurrence_indices() {
        // A diamond: +a enabled concurrently with +b, so +a occurs from two
        // states — the SM encoding needs a+/2.
        let mut b = SgBuilder::named("dia");
        let a = b.signal("a", nshot_sg::SignalKind::Input);
        let y = b.signal("y", nshot_sg::SignalKind::Output);
        b.edge_codes(0b00, (a, true), 0b01).unwrap();
        b.edge_codes(0b00, (y, true), 0b10).unwrap();
        b.edge_codes(0b01, (y, true), 0b11).unwrap();
        b.edge_codes(0b10, (a, true), 0b11).unwrap();
        b.edge_codes(0b11, (a, false), 0b10).unwrap();
        b.edge_codes(0b10, (y, false), 0b00).unwrap();
        let sg = b.build(0b00).unwrap();
        let text = sg_to_g_text(&sg);
        assert!(text.contains("/2"), "repeated labels need occurrences:\n{text}");
        let sg2 = parse_stg(&text).unwrap().elaborate().unwrap();
        assert_eq!(sg2.num_states(), sg.num_states());
    }
}
