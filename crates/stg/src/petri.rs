//! The labelled Petri net underlying an STG.

use crate::error::StgError;
use nshot_sg::{Dir, SignalKind};
use std::fmt;

/// Index of a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub(crate) u32);

/// Index of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransId(pub(crate) u32);

#[derive(Debug, Clone)]
pub(crate) struct SignalDecl {
    pub name: String,
    pub kind: SignalKind,
}

#[derive(Debug, Clone)]
pub(crate) struct TransitionDecl {
    /// Index into the signal table.
    pub signal: usize,
    pub dir: Dir,
    /// Occurrence index (the `/k` suffix of the `.g` format), used only to
    /// distinguish multiple transitions of the same signal edge.
    pub occurrence: u32,
    pub pre: Vec<PlaceId>,
    pub post: Vec<PlaceId>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct PlaceDecl {
    pub name: String,
    pub pre: Vec<TransId>,
    pub post: Vec<TransId>,
}

/// A marking: token count per place. Place `i` is `tokens[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Marking(pub(crate) Vec<u8>);

impl Marking {
    /// Token count of a place.
    pub fn tokens(&self, p: PlaceId) -> u8 {
        self.0[p.0 as usize]
    }
}

/// A Signal Transition Graph: a Petri net whose transitions are labelled
/// with signal edges.
///
/// Build one programmatically with [`Stg::new`] / [`Stg::add_signal`] /
/// [`Stg::add_transition`] / [`Stg::connect`], or parse the `.g` format with
/// [`crate::parse_stg`]. Elaborate to a state graph with [`Stg::elaborate`].
#[derive(Debug, Clone)]
pub struct Stg {
    pub(crate) name: String,
    pub(crate) signals: Vec<SignalDecl>,
    pub(crate) transitions: Vec<TransitionDecl>,
    pub(crate) places: Vec<PlaceDecl>,
    pub(crate) initial: Vec<u8>,
}

impl Stg {
    /// An empty STG with the given model name.
    pub fn new(name: &str) -> Self {
        Stg {
            name: name.to_owned(),
            signals: Vec::new(),
            transitions: Vec::new(),
            places: Vec::new(),
            initial: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Number of places (explicit and implicit).
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Declare a signal. Returns its index.
    pub fn add_signal(&mut self, name: &str, kind: SignalKind) -> usize {
        self.signals.push(SignalDecl {
            name: name.to_owned(),
            kind,
        });
        self.signals.len() - 1
    }

    /// Look up a signal index by name.
    pub fn signal_index(&self, name: &str) -> Option<usize> {
        self.signals.iter().position(|s| s.name == name)
    }

    /// Add a transition of `signal` with the given direction and occurrence
    /// index (use 0 when a signal edge occurs only once).
    pub fn add_transition(&mut self, signal: usize, dir: Dir, occurrence: u32) -> TransId {
        let id = TransId(self.transitions.len() as u32);
        self.transitions.push(TransitionDecl {
            signal,
            dir,
            occurrence,
            pre: Vec::new(),
            post: Vec::new(),
        });
        id
    }

    /// Add an explicit place with `tokens` initial tokens.
    pub fn add_place(&mut self, name: &str, tokens: u8) -> PlaceId {
        let id = PlaceId(self.places.len() as u32);
        self.places.push(PlaceDecl {
            name: name.to_owned(),
            ..PlaceDecl::default()
        });
        self.initial.push(tokens);
        id
    }

    /// Connect two transitions through a fresh implicit place holding
    /// `tokens` initial tokens (the `.g` arc `t1 t2`).
    pub fn connect(&mut self, from: TransId, to: TransId, tokens: u8) -> PlaceId {
        let p = self.add_place(
            &format!("<{},{}>", self.transition_name(from), self.transition_name(to)),
            tokens,
        );
        self.arc_tp(from, p);
        self.arc_pt(p, to);
        p
    }

    /// Arc transition → place.
    pub fn arc_tp(&mut self, t: TransId, p: PlaceId) {
        self.transitions[t.0 as usize].post.push(p);
        self.places[p.0 as usize].pre.push(t);
    }

    /// Arc place → transition.
    pub fn arc_pt(&mut self, p: PlaceId, t: TransId) {
        self.transitions[t.0 as usize].pre.push(p);
        self.places[p.0 as usize].post.push(t);
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        Marking(self.initial.clone())
    }

    /// Human-readable transition name, e.g. `a+` or `b-/2`.
    pub fn transition_name(&self, t: TransId) -> String {
        let tr = &self.transitions[t.0 as usize];
        let base = format!("{}{}", self.signals[tr.signal].name, tr.dir.sign());
        if tr.occurrence == 0 {
            base
        } else {
            format!("{base}/{}", tr.occurrence)
        }
    }

    /// `true` if `t` is enabled in `m` (every pre-place holds a token).
    pub fn is_enabled(&self, m: &Marking, t: TransId) -> bool {
        self.transitions[t.0 as usize]
            .pre
            .iter()
            .all(|p| m.tokens(*p) > 0)
    }

    /// All transitions enabled in `m`.
    pub fn enabled(&self, m: &Marking) -> Vec<TransId> {
        (0..self.transitions.len() as u32)
            .map(TransId)
            .filter(|&t| self.is_enabled(m, t))
            .collect()
    }

    /// Fire `t` from `m`.
    ///
    /// # Errors
    ///
    /// [`StgError::NotEnabled`] if `t` is not enabled;
    /// [`StgError::Unbounded`] if a place would exceed the supported bound.
    pub fn fire(&self, m: &Marking, t: TransId) -> Result<Marking, StgError> {
        if !self.is_enabled(m, t) {
            return Err(StgError::NotEnabled(self.transition_name(t)));
        }
        let mut next = m.clone();
        let tr = &self.transitions[t.0 as usize];
        for &p in &tr.pre {
            next.0[p.0 as usize] -= 1;
        }
        for &p in &tr.post {
            let slot = &mut next.0[p.0 as usize];
            *slot = slot.checked_add(1).ok_or_else(|| StgError::Unbounded {
                place: self.places[p.0 as usize].name.clone(),
            })?;
            if *slot > 8 {
                return Err(StgError::Unbounded {
                    place: self.places[p.0 as usize].name.clone(),
                });
            }
        }
        Ok(next)
    }

    /// Structural sanity check: every transition has at least one pre-place
    /// (otherwise it is always enabled and the net is unbounded) and every
    /// place connects to some transition.
    ///
    /// # Errors
    ///
    /// [`StgError::Structural`] describing the offending element.
    pub fn check_structure(&self) -> Result<(), StgError> {
        for (i, t) in self.transitions.iter().enumerate() {
            if t.pre.is_empty() {
                return Err(StgError::Structural(format!(
                    "transition {} has no input place",
                    self.transition_name(TransId(i as u32))
                )));
            }
        }
        for p in &self.places {
            if p.pre.is_empty() && p.post.is_empty() {
                return Err(StgError::Structural(format!(
                    "place {} is disconnected",
                    p.name
                )));
            }
        }
        Ok(())
    }

    /// Find a transition by its textual name (`a+`, `b-/2`).
    pub fn transition_by_name(&self, name: &str) -> Option<TransId> {
        (0..self.transitions.len() as u32)
            .map(TransId)
            .find(|&t| self.transition_name(t) == name)
    }

    /// Find or lazily remember a place between two transitions (used by the
    /// parser to place marking tokens on implicit places).
    pub(crate) fn place_between(&self, from: TransId, to: TransId) -> Option<PlaceId> {
        self.transitions[from.0 as usize]
            .post
            .iter()
            .copied()
            .find(|p| self.places[p.0 as usize].post.contains(&to))
    }

    /// Find an explicit place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places
            .iter()
            .position(|p| p.name == name)
            .map(|i| PlaceId(i as u32))
    }

    /// Set the initial token count of a place.
    pub fn set_tokens(&mut self, p: PlaceId, tokens: u8) {
        self.initial[p.0 as usize] = tokens;
    }

}

impl fmt::Display for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".model {}", self.name)?;
        for (tag, kind) in [
            (".inputs", SignalKind::Input),
            (".outputs", SignalKind::Output),
            (".internal", SignalKind::Internal),
        ] {
            let names: Vec<&str> = self
                .signals
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.name.as_str())
                .collect();
            if !names.is_empty() {
                writeln!(f, "{tag} {}", names.join(" "))?;
            }
        }
        writeln!(f, ".graph")?;
        for (i, t) in self.transitions.iter().enumerate() {
            let from = self.transition_name(TransId(i as u32));
            for &p in &t.post {
                for &succ in &self.places[p.0 as usize].post {
                    writeln!(f, "{from} {}", self.transition_name(succ))?;
                }
            }
        }
        let marked: Vec<String> = self
            .places
            .iter()
            .zip(&self.initial)
            .filter(|&(_, &tok)| tok > 0)
            .map(|(p, &tok)| {
                if tok == 1 {
                    p.name.clone()
                } else {
                    format!("{}={tok}", p.name)
                }
            })
            .collect();
        writeln!(f, ".marking {{ {} }}", marked.join(" "))?;
        writeln!(f, ".end")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle_net() -> (Stg, TransId, TransId) {
        let mut stg = Stg::new("toggle");
        let a = stg.add_signal("a", SignalKind::Output);
        let up = stg.add_transition(a, Dir::Rise, 0);
        let down = stg.add_transition(a, Dir::Fall, 0);
        stg.connect(up, down, 0);
        stg.connect(down, up, 1);
        (stg, up, down)
    }

    #[test]
    fn firing_moves_token() {
        let (stg, up, down) = toggle_net();
        let m0 = stg.initial_marking();
        assert!(stg.is_enabled(&m0, up));
        assert!(!stg.is_enabled(&m0, down));
        let m1 = stg.fire(&m0, up).unwrap();
        assert!(stg.is_enabled(&m1, down));
        assert!(!stg.is_enabled(&m1, up));
        let m2 = stg.fire(&m1, down).unwrap();
        assert_eq!(m2, m0);
    }

    #[test]
    fn firing_disabled_is_error() {
        let (stg, _, down) = toggle_net();
        let m0 = stg.initial_marking();
        assert!(matches!(
            stg.fire(&m0, down),
            Err(StgError::NotEnabled(_))
        ));
    }

    #[test]
    fn structure_check_catches_sourceless_transition() {
        let mut stg = Stg::new("bad");
        let a = stg.add_signal("a", SignalKind::Output);
        stg.add_transition(a, Dir::Rise, 0);
        assert!(matches!(
            stg.check_structure(),
            Err(StgError::Structural(_))
        ));
    }

    #[test]
    fn transition_names() {
        let mut stg = Stg::new("n");
        let a = stg.add_signal("a", SignalKind::Input);
        let t0 = stg.add_transition(a, Dir::Rise, 0);
        let t1 = stg.add_transition(a, Dir::Fall, 2);
        assert_eq!(stg.transition_name(t0), "a+");
        assert_eq!(stg.transition_name(t1), "a-/2");
        assert_eq!(stg.transition_by_name("a-/2"), Some(t1));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let (stg, _, _) = toggle_net();
        let text = stg.to_string();
        let stg2 = crate::parse_stg(&text).expect("display output parses");
        assert_eq!(stg2.num_transitions(), 2);
        assert_eq!(stg2.num_places(), 2);
    }
}

impl Stg {
    /// Parallel composition: the disjoint union of two STGs (they run
    /// independently side by side). Signal names must not collide.
    ///
    /// # Panics
    ///
    /// Panics on signal-name collisions.
    pub fn parallel(name: &str, left: &Stg, right: &Stg) -> Stg {
        for s in &right.signals {
            assert!(
                !left.signals.iter().any(|l| l.name == s.name),
                "signal name '{}' collides",
                s.name
            );
        }
        let mut out = Stg::new(name);
        out.signals = left
            .signals
            .iter()
            .chain(&right.signals)
            .cloned()
            .collect();
        let sig_off = left.signals.len();
        let place_off = left.places.len() as u32;
        let trans_off = left.transitions.len() as u32;
        out.transitions = left.transitions.clone();
        for t in &right.transitions {
            let mut t = t.clone();
            t.signal += sig_off;
            t.pre = t.pre.iter().map(|p| PlaceId(p.0 + place_off)).collect();
            t.post = t.post.iter().map(|p| PlaceId(p.0 + place_off)).collect();
            out.transitions.push(t);
        }
        out.places = left.places.clone();
        for p in &right.places {
            let mut p = p.clone();
            p.pre = p.pre.iter().map(|t| TransId(t.0 + trans_off)).collect();
            p.post = p.post.iter().map(|t| TransId(t.0 + trans_off)).collect();
            out.places.push(p);
        }
        out.initial = left
            .initial
            .iter()
            .chain(&right.initial)
            .copied()
            .collect();
        out
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::parse_stg;

    #[test]
    fn parallel_composition_multiplies_state_spaces() {
        let a = parse_stg(
            ".model a\n.inputs r\n.outputs g\n.graph\nr+ g+\ng+ r-\nr- g-\ng- r+\n.marking { <g-,r+> }\n.end",
        )
        .unwrap();
        let b = parse_stg(
            ".model b\n.inputs s\n.outputs h\n.graph\ns+ h+\nh+ s-\ns- h-\nh- s+\n.marking { <h-,s+> }\n.end",
        )
        .unwrap();
        let par = Stg::parallel("ab", &a, &b);
        assert_eq!(par.num_signals(), 4);
        assert_eq!(par.num_transitions(), 8);
        let sg = par.elaborate().unwrap();
        assert_eq!(sg.num_states(), 16, "4 × 4 interleaved");
        assert!(sg.check_csc().is_ok());
        assert!(sg.check_semi_modular().is_ok());
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn name_collision_panics() {
        let a = parse_stg(
            ".model a\n.inputs r\n.outputs g\n.graph\nr+ g+\ng+ r+\n.marking { <g+,r+> }\n.end",
        )
        .unwrap();
        let _ = Stg::parallel("aa", &a, &a);
    }
}
