//! # nshot — externally hazard-free asynchronous circuit synthesis
//!
//! A from-scratch Rust reproduction of *“Externally Hazard-Free
//! Implementations of Asynchronous Circuits”* (Sawasaki, Ykman-Couvreur,
//! Lin — 32nd DAC, 1995): the **N-SHOT architecture** and the ASSASSIN-style
//! synthesis flow built on it, together with every substrate the paper
//! depends on.
//!
//! The headline idea: implement each non-input signal of a semi-modular
//! state-graph specification with *conventionally minimized* (hazardous!)
//! set/reset sum-of-products networks, an acknowledgement scheme, and a
//! pulse-filtering **MHS flip-flop** — the circuit is then hazard-free at
//! every externally observable signal, for distributive *and*
//! non-distributive specifications, requiring only Complete State Coding and
//! the trigger requirement.
//!
//! ## Crate map
//!
//! | re-export | contents |
//! |-----------|----------|
//! | [`sg`] | state-graph model, CSC/semi-modularity checks, ER/QR/TR regions |
//! | [`stg`] | Signal Transition Graph front-end (`.g` parser, elaboration) |
//! | [`logic`] | two-level minimization (heuristic ESPRESSO loop + exact) |
//! | [`netlist`] | gate library, area/delay estimation, Eq. 1 timing |
//! | [`core`] | the N-SHOT synthesis flow (the paper's contribution) |
//! | [`sim`] | pure-delay event simulation, MHS models, conformance oracle |
//! | [`mc`] | exhaustive hazard model checker: proof certificates, minimal counterexamples |
//! | [`baselines`] | the SIS-like and SYN-like Table 2 comparators |
//! | [`benchmarks`] | the 25-circuit Table 2 suite |
//! | [`gen`] | seeded random generator of valid specifications (fuzzing, load mix) |
//! | [`server`] | the NDJSON-over-TCP synthesis service (`nshot-serve`) |
//! | [`shard`] | consistent-hash sharded serving front (`nshot-shard`) |
//!
//! ## Quickstart
//!
//! ```
//! use nshot::sg::{SgBuilder, SignalKind};
//! use nshot::core::{synthesize, SynthesisOptions};
//!
//! // Specify a request/grant handshake as a state graph…
//! let mut b = SgBuilder::named("handshake");
//! let r = b.signal("r", SignalKind::Input);
//! let g = b.signal("g", SignalKind::Output);
//! b.edge_codes(0b00, (r, true), 0b01)?;
//! b.edge_codes(0b01, (g, true), 0b11)?;
//! b.edge_codes(0b11, (r, false), 0b10)?;
//! b.edge_codes(0b10, (g, false), 0b00)?;
//! let sg = b.build(0b00)?;
//!
//! // …synthesize an externally hazard-free N-SHOT implementation…
//! let imp = synthesize(&sg, &SynthesisOptions::default())?;
//!
//! // …and check it against the specification under random gate delays.
//! let report = nshot::sim::check_conformance(
//!     &sg,
//!     &imp,
//!     &nshot::sim::ConformanceConfig::default(),
//! );
//! assert!(report.is_hazard_free());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use nshot_baselines as baselines;
pub use nshot_benchmarks as benchmarks;
pub use nshot_core as core;
pub use nshot_gen as gen;
pub use nshot_logic as logic;
pub use nshot_mc as mc;
pub use nshot_netlist as netlist;
pub use nshot_server as server;
pub use nshot_sg as sg;
pub use nshot_shard as shard;
pub use nshot_sim as sim;
pub use nshot_stg as stg;
pub use nshot_store as store;
pub use nshot_wire as wire;
