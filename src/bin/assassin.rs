//! `assassin` — the command-line face of the synthesis flow, named after
//! the compiler the paper's method was automated in.
//!
//! ```text
//! assassin check <file>                       analyse a specification
//! assassin synth <file> [options]             synthesize an N-SHOT circuit
//!     --exact          use the exact minimizer
//!     --no-share       disable product-term sharing
//!     --fix-csc        repair CSC violations by state-signal insertion
//!     --report         print the full synthesis report (covers, PLA, Eq. 1)
//!     --verilog <out>  write structural Verilog
//!     --blif <out>     write BLIF (the SIS interchange format)
//!     --dot <out>      write the SG with regions highlighted as DOT
//!     --netlist        print the netlist
//! assassin simulate <file> [options]          validate by simulation
//!     --trials <n>     Monte-Carlo trials (default 10)
//!     --transitions <n>  per trial (default 200)
//!     --vcd <out>      write a waveform of the first trial
//! assassin bench <name>                       run one Table 2 circuit
//! assassin suite                              list the benchmark suite
//! ```
//!
//! Specification files may be Signal Transition Graphs in the `.g` format
//! (detected by a `.graph` section) or state graphs in the SG text format.

use nshot::core::{synthesize, SynthesisOptions};
use nshot::sg::StateGraph;
use nshot::sim::{check_conformance_traced, monte_carlo, ConformanceConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = run(&args);
    // Drain any buffered NSHOT_TRACE span lines before the process exits.
    nshot_obs::flush_trace();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("assassin: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("usage: assassin <check|synth|simulate|bench|suite> …".into());
    };
    match command.as_str() {
        "check" => check(args.get(1).ok_or("check needs a file")?),
        "synth" => synth(args.get(1).ok_or("synth needs a file")?, &args[2..]),
        "simulate" => simulate(args.get(1).ok_or("simulate needs a file")?, &args[2..]),
        "bench" => bench(args.get(1).ok_or("bench needs a circuit name")?),
        "suite" => {
            for b in nshot::benchmarks::suite() {
                println!(
                    "{:<15} {:>5} states  {}  ({:?})",
                    b.name,
                    b.paper_states,
                    if b.distributive {
                        "distributive    "
                    } else {
                        "non-distributive"
                    },
                    b.provenance
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn load(path: &str) -> Result<StateGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if text.contains(".graph") {
        let stg = nshot::stg::parse_stg(&text).map_err(|e| format!("{path}: {e}"))?;
        stg.elaborate().map_err(|e| format!("{path}: {e}"))
    } else {
        nshot::sg::parse_sg(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn check(path: &str) -> Result<(), String> {
    let sg = load(path)?;
    println!("specification '{}':", sg.name());
    println!("  signals:          {}", sg.num_signals());
    println!(
        "  inputs/outputs:   {}/{}",
        sg.input_signals().count(),
        sg.non_input_signals().count()
    );
    println!("  states:           {}", sg.reachable().len());
    match sg.check_csc() {
        Ok(()) => println!("  CSC:              ok"),
        Err(v) => println!("  CSC:              VIOLATED ({} state pairs)", v.len()),
    }
    match sg.check_semi_modular() {
        Ok(()) => println!("  semi-modular:     ok"),
        Err(v) => println!("  semi-modular:     VIOLATED ({} diamonds)", v.len()),
    }
    let nd = sg.non_distributive_signals();
    if nd.is_empty() {
        println!("  distributive:     yes");
    } else {
        let names: Vec<&str> = nd.iter().map(|&s| sg.signal_name(s)).collect();
        println!("  distributive:     no (detonant w.r.t. {})", names.join(", "));
    }
    println!("  single traversal: {}", sg.is_single_traversal());
    for a in sg.non_input_signals() {
        let regions = sg.regions_of(a);
        println!(
            "  signal {:<10} {} ER / {} TR (largest TR: {} states)",
            sg.signal_name(a),
            regions.excitation.len(),
            regions.triggers.len(),
            regions.triggers.iter().map(|t| t.states.len()).max().unwrap_or(0)
        );
    }
    Ok(())
}

fn synth(path: &str, flags: &[String]) -> Result<(), String> {
    let mut sg = load(path)?;
    if has_flag(flags, "--fix-csc") && sg.check_csc().is_err() {
        sg = sg.resolve_csc(3).map_err(|e| e.to_string())?;
        println!(
            "CSC repaired with {} inserted state signal(s)",
            sg.signal_ids()
                .filter(|&s| sg.signal_name(s).starts_with("csc"))
                .count()
        );
    }
    let mut options = SynthesisOptions::default();
    if has_flag(flags, "--exact") {
        options.minimizer = nshot::core::Minimizer::Exact;
    }
    if has_flag(flags, "--no-share") {
        options.share_products = false;
    }
    let imp = synthesize(&sg, &options).map_err(|e| e.to_string())?;
    println!(
        "synthesized '{}': {} units, {:.1} ns critical path, {} product terms",
        imp.name,
        imp.area,
        imp.delay_ns,
        imp.product_terms()
    );
    for s in &imp.signals {
        println!(
            "  {:<10} set = {:<20} reset = {:<20} init = {:?}{}",
            s.name,
            s.set_cover.to_string(),
            s.reset_cover.to_string(),
            s.init,
            if s.delay.needs_delay_line() {
                format!(" t_del = {:.2} ns", s.delay.t_del_ns)
            } else {
                String::new()
            }
        );
    }
    if has_flag(flags, "--netlist") {
        println!("\n{}", imp.netlist);
    }
    if has_flag(flags, "--report") {
        println!("\n{}", imp.report(&sg));
    }
    if let Some(out) = flag_value(flags, "--blif") {
        std::fs::write(&out, imp.netlist.to_blif()).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote BLIF to {out}");
    }
    if let Some(out) = flag_value(flags, "--verilog") {
        std::fs::write(&out, imp.netlist.to_verilog()).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote Verilog to {out}");
    }
    if let Some(out) = flag_value(flags, "--dot") {
        let highlight = sg.non_input_signals().next();
        std::fs::write(&out, sg.to_dot_highlighting(highlight))
            .map_err(|e| format!("{out}: {e}"))?;
        println!("wrote DOT to {out}");
    }
    Ok(())
}

fn simulate(path: &str, flags: &[String]) -> Result<(), String> {
    let sg = load(path)?;
    let imp = synthesize(&sg, &SynthesisOptions::default()).map_err(|e| e.to_string())?;
    let trials: usize = flag_value(flags, "--trials")
        .map(|v| v.parse().map_err(|_| "--trials needs a number"))
        .transpose()?
        .unwrap_or(10);
    let transitions: usize = flag_value(flags, "--transitions")
        .map(|v| v.parse().map_err(|_| "--transitions needs a number"))
        .transpose()?
        .unwrap_or(200);
    let config = ConformanceConfig {
        max_transitions: transitions,
        ..ConformanceConfig::default()
    };
    if let Some(out) = flag_value(flags, "--vcd") {
        let (report, wave) = check_conformance_traced(&sg, &imp, &config);
        std::fs::write(&out, wave.to_vcd()).map_err(|e| format!("{out}: {e}"))?;
        println!(
            "traced trial: {} transitions, hazard-free = {}; wrote {out}",
            report.transitions,
            report.is_hazard_free()
        );
    }
    let summary = monte_carlo(&sg, &imp, &config, trials);
    println!(
        "monte carlo: {}/{} clean trials, {} transitions exercised",
        summary.clean_trials, summary.trials, summary.total_transitions
    );
    if let Some(fail) = &summary.first_failure {
        println!("first failure: {:?}", fail.violations.first());
        return Err("hazard violations found".into());
    }
    Ok(())
}

fn bench(name: &str) -> Result<(), String> {
    let b = nshot::benchmarks::by_name(name)
        .ok_or_else(|| format!("unknown benchmark '{name}' (try `assassin suite`)"))?;
    let row = nshot_bench_row(&b);
    println!("{row}");
    Ok(())
}

fn nshot_bench_row(b: &nshot::benchmarks::Benchmark) -> String {
    use nshot::baselines::{sis, syn};
    let sg = b.build();
    let model = nshot::netlist::DelayModel::nominal();
    let fmt = |r: Result<(u32, f64), String>| match r {
        Ok((a, d)) => format!("{a}/{d:.1}"),
        Err(note) => note,
    };
    let sis_cell = if b.sg_format_only {
        Err("(4)".to_owned())
    } else {
        sis(&sg, &model)
            .map(|i| (i.area, i.delay_ns))
            .map_err(|_| "(1)".to_owned())
    };
    let syn_cell = syn(&sg, &model)
        .map(|i| (i.area, i.delay_ns))
        .map_err(|_| "(1)/(2)".to_owned());
    let nshot = synthesize(&sg, &SynthesisOptions::default()).expect("suite synthesizes");
    format!(
        "{:<15} {:>6} states | SIS {:>9} | SYN {:>9} | ASSASSIN {:>9} | paper ASSASSIN {}/{:.1}",
        b.name,
        sg.reachable().len(),
        fmt(sis_cell),
        fmt(syn_cell),
        fmt(Ok((nshot.area, nshot.delay_ns))),
        b.paper_assassin.0,
        b.paper_assassin.1,
    )
}

fn has_flag(flags: &[String], name: &str) -> bool {
    flags.iter().any(|f| f == name)
}

fn flag_value(flags: &[String], name: &str) -> Option<String> {
    flags
        .iter()
        .position(|f| f == name)
        .and_then(|i| flags.get(i + 1))
        .cloned()
}
