//! An industrial-style interface circuit in the spirit of the paper's
//! `pmcm`/`combuf` mobile-terminal designs: OR causality (a transfer is
//! triggered by whichever side is ready first) with a handshake tail —
//! non-distributive, so only the N-SHOT flow implements it. Regenerates the
//! circuit's Table 1, synthesizes it, and stress-tests it.
//!
//! Run with: `cargo run --example industrial_interface`

use nshot::core::{synthesize, SetResetSpec, SynthesisOptions};
use nshot::sim::{monte_carlo, ConformanceConfig, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // pmcm1-style: OR-causal core plus three transfer handshake pairs.
    let sg = nshot::benchmarks::or_causal("pmcm1-style", "", 3);
    println!(
        "'{}': {} states, {} signals, distributive = {}",
        sg.name(),
        sg.num_states(),
        sg.num_signals(),
        sg.is_distributive()
    );

    // Table 1 for the OR-causal output c: every reachable state mapped to
    // its MHS operation mode.
    let c = sg.signal_by_name("c").expect("output c");
    let spec = SetResetSpec::derive(&sg, c);
    println!("\nTable 1 for signal c:");
    println!("  {:<12} SET RESET  mode", "state");
    for &s in sg.reachable() {
        let (set, reset, mode) = spec.table1_row(&sg, s);
        println!("  {:<12} {set:^3} {reset:^5}  {mode}", sg.code_string(s));
    }

    let imp = synthesize(&sg, &SynthesisOptions::default())?;
    println!(
        "\nsynthesized: {} units, {:.1} ns, {} product terms",
        imp.area,
        imp.delay_ns,
        imp.product_terms()
    );
    println!(
        "initialization plans: {:?}",
        imp.signals.iter().map(|s| (&s.name, s.init)).collect::<Vec<_>>()
    );

    // Stress: many trials, long runs, different ω.
    for omega_ps in [150, 300, 500] {
        let config = ConformanceConfig {
            max_transitions: 400,
            sim: SimConfig {
                omega_ps,
                ..SimConfig::default()
            },
            ..ConformanceConfig::default()
        };
        let summary = monte_carlo(&sg, &imp, &config, 25);
        println!(
            "ω = {omega_ps} ps: {}/{} clean trials ({} transitions)",
            summary.clean_trials, summary.trials, summary.total_transitions
        );
        assert!(summary.all_clean(), "{:?}", summary.first_failure);
    }
    Ok(())
}
