//! The classic front-end flow: a Signal Transition Graph in the `.g`
//! interchange format, elaborated to a state graph by the token game, then
//! synthesized and compared across all three methods.
//!
//! Run with: `cargo run --example stg_flow`

use nshot::baselines::{sis, syn};
use nshot::core::{synthesize, SynthesisOptions};
use nshot::netlist::DelayModel;
use nshot::stg::parse_stg;

/// A two-stage micropipeline control: `rin` requests, stage outputs `s0`,
/// `s1` propagate, `aout` acknowledges from the right environment.
const PIPELINE_G: &str = "
.model micropipeline
.inputs rin aout
.outputs s0 s1
.graph
rin+ s0+
s0+ s1+
s1+ aout+ rin-
rin- s0-
aout+ s1-
s0- s1-/ignore
.marking { <s1-,rin+> }
.end
";

/// The actual net (the line above with `/ignore` is replaced below —
/// kept to show parse errors are caught).
const PIPELINE_OK: &str = "
.model micropipeline
.inputs rin aout
.outputs s0 s1
.graph
rin+ s0+
s0+ s1+
s1+ aout+
s1+ rin-
rin- s0-
aout+ s1-
s0- s1-
s1- rin+
s1- aout-
aout- s1-/x
.marking { <s1-,rin+> }
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The sloppy first attempt fails structurally — errors are diagnosed,
    // not panicked on.
    match parse_stg(PIPELINE_G).map(|stg| stg.elaborate()) {
        Ok(Ok(_)) => println!("(unexpectedly consistent)"),
        Ok(Err(e)) => println!("elaboration rejected the sketch: {e}"),
        Err(e) => println!("parser rejected the sketch: {e}"),
    }

    // A clean four-phase handshake pair instead.
    let stg = parse_stg(
        ".model latch-ctl\n.inputs rin\n.outputs aout lt\n.graph\nrin+ lt+\nlt+ aout+\naout+ rin-\nrin- lt-\nlt- aout-\naout- rin+\n.marking { <aout-,rin+> }\n.end",
    )?;
    println!(
        "\nparsed '{}': {} transitions, {} places",
        stg.name(),
        stg.num_transitions(),
        stg.num_places()
    );
    let sg = stg.elaborate()?;
    println!(
        "elaborated to {} states over {} signals; CSC = {}, distributive = {}",
        sg.num_states(),
        sg.num_signals(),
        sg.check_csc().is_ok(),
        sg.is_distributive()
    );

    let model = DelayModel::nominal();
    let nshot = synthesize(&sg, &SynthesisOptions::default())?;
    let sis_imp = sis(&sg, &model)?;
    let syn_imp = syn(&sg, &model)?;
    println!("\nmethod comparison (area units / ns):");
    println!("  SIS-like  {:>5} / {:.1}", sis_imp.area, sis_imp.delay_ns);
    println!("  SYN-like  {:>5} / {:.1}", syn_imp.area, syn_imp.delay_ns);
    println!("  N-SHOT    {:>5} / {:.1}", nshot.area, nshot.delay_ns);

    // Round-trip: the elaborated SG serializes to the SG text format too.
    let text = sg.to_text();
    let back = nshot::sg::parse_sg(&text)?;
    assert_eq!(back.num_states(), sg.num_states());
    println!("\nSG text round-trip OK ({} states)", back.num_states());
    Ok(())
}
