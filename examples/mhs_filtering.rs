//! The MHS flip-flop up close: pulse filtering (Fig. 4), the structural
//! master/filter/slave response to hazardous inputs (Fig. 6), and the Eq. 1
//! delay requirement under a pathological delay spread.
//!
//! Run with: `cargo run --example mhs_filtering`

use nshot::core::{synthesize, SynthesisOptions};
use nshot::netlist::DelayModel;
use nshot::sim::{MhsCell, PulseResponse, StructuralMhs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const OMEGA: u64 = 300; // ps
    const TAU: u64 = 600; // ps

    println!("— Fig. 4: single-pulse threshold sweep (ω = {OMEGA} ps, τ = {TAU} ps)");
    for width in [100u64, 250, 299, 300, 450, 900] {
        let r = PulseResponse::of_pulse_train(OMEGA, TAU, &[(1_000, width)]);
        println!(
            "  {width:>4} ps pulse → {}",
            match r.output_rises.first() {
                Some(t) => format!("fires at {t} ps (= rise + τ)"),
                None => "absorbed".to_owned(),
            }
        );
    }

    println!("\n— Property 3: a pulse stream becomes ONE transition");
    let r = PulseResponse::of_pulse_train(
        OMEGA,
        TAU,
        &[(1_000, 120), (1_400, 90), (1_700, 200), (2_200, 800), (3_500, 700)],
    );
    println!(
        "  5-pulse stream → {} transition(s) at {:?} ({} runts absorbed)",
        r.output_rises.len(),
        r.output_rises,
        r.absorbed
    );

    println!("\n— Fig. 6: structural master/filter/slave stages");
    let trace = StructuralMhs::new(OMEGA, 100).respond_to_set_pulses(&[
        (1_000, 120),
        (1_500, 180),
        (2_200, 900),
    ]);
    println!("  master rail edges:   {:?}", trace.master_q);
    println!("  slave-set edges:     {:?} (clean rise)", trace.slave_set);
    println!("  slave-reset edges:   {:?} (hazardous downs)", trace.slave_reset);
    println!("  output edges:        {:?} (hazard-free)", trace.out);

    println!("\n— manual cell driving");
    let mut cell = MhsCell::new(OMEGA, TAU);
    let action = cell.on_inputs(0, true, false);
    println!("  arm at t=0: {action:?}");
    cell.on_inputs(100, false, false); // runt!
    println!("  cancelled by a 100 ps fall; output = {}", cell.output());

    println!("\n— Eq. 1 under a pathological ±3x delay spread");
    let sg = nshot::benchmarks::fork_join_channels("spread-demo", "", 2, 1);
    let wide = SynthesisOptions {
        delay_model: DelayModel::wide_spread(),
        ..SynthesisOptions::default()
    };
    let imp = synthesize(&sg, &wide)?;
    for s in &imp.signals {
        println!(
            "  {}: t_del = {:.2} ns → {}",
            s.name,
            s.delay.t_del_ns,
            if s.delay.needs_delay_line() {
                "delay line inserted"
            } else {
                "no compensation"
            }
        );
    }
    let nominal = synthesize(&sg, &SynthesisOptions::default())?;
    assert!(nominal.delay_compensation_free());
    println!("  (nominal ±10% model: no compensation anywhere, as in the paper)");
    Ok(())
}
