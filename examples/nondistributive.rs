//! The paper's headline capability: synthesizing a **non-distributive**
//! specification (Figure 1's OR-causal behaviour) that the comparator
//! methods refuse, then validating external hazard-freeness.
//!
//! Run with: `cargo run --example nondistributive`

use nshot::baselines::{sis, syn, BaselineError};
use nshot::core::{synthesize, SynthesisOptions};
use nshot::netlist::DelayModel;
use nshot::sim::{monte_carlo, ConformanceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 1 behaviour: output c rises after the FIRST of inputs a, b
    // rises and falls after the first fall; an internal phase signal keeps
    // the state coding complete.
    let sg = nshot::benchmarks::or_causal("figure1", "", 0);
    let c = sg.signal_by_name("c").expect("output c");

    println!("specification '{}' ({} states):", sg.name(), sg.num_states());
    println!(
        "  detonant states w.r.t. c: {:?}",
        sg.detonant_states(c)
            .iter()
            .map(|&s| sg.code_string(s))
            .collect::<Vec<_>>()
    );
    println!("  distributive: {}", sg.is_distributive());
    println!("  CSC: {}", sg.check_csc().is_ok());

    // The distributive-only methods refuse it (Table 2 footnote (1)).
    let model = DelayModel::nominal();
    match sis(&sg, &model) {
        Err(BaselineError::NonDistributive { signals }) => {
            println!("  SIS-like flow: rejected (non-distributive: {signals:?})")
        }
        other => panic!("SIS should refuse non-distributive input, got {other:?}"),
    }
    match syn(&sg, &model) {
        Err(BaselineError::NonDistributive { .. }) => {
            println!("  SYN-like flow: rejected (non-distributive)")
        }
        other => panic!("SYN should refuse non-distributive input, got {other:?}"),
    }

    // The N-SHOT flow handles it uniformly.
    let imp = synthesize(&sg, &SynthesisOptions::default())?;
    println!("\nN-SHOT implementation ({} units, {:.1} ns):", imp.area, imp.delay_ns);
    for s in &imp.signals {
        println!("  {}: set = {} | reset = {}", s.name, s.set_cover, s.reset_cover);
        for cert in &s.triggers {
            println!(
                "     trigger region {:?} covered ({:?})",
                cert.states, cert.status
            );
        }
    }
    println!("\nnetlist:\n{}", imp.netlist);

    // Monte-Carlo validation: the OR-causal races (a and b rising in either
    // order, with arbitrary internal skews) never produce an observable
    // glitch.
    let summary = monte_carlo(&sg, &imp, &ConformanceConfig::default(), 50);
    println!(
        "monte carlo: {}/{} clean trials, {} transitions exercised",
        summary.clean_trials, summary.trials, summary.total_transitions
    );
    assert!(summary.all_clean(), "{:?}", summary.first_failure);
    Ok(())
}
