//! Front-end CSC repair: the raw Figure 1 specification (which violates
//! Complete State Coding) is transformed by state-signal insertion, then
//! synthesized and validated — the transformation the paper assumes was
//! done to its benchmarks before synthesis.
//!
//! Run with: `cargo run --example csc_repair`

use nshot::core::{synthesize, SynthesisError, SynthesisOptions};
use nshot::sg::{SgBuilder, SignalKind, StateGraph};
use nshot::sim::{monte_carlo, ConformanceConfig};

/// The raw Figure 1 SG: `c` is OR-causal on both input edges; the up and
/// down phases revisit the same binary codes with different `c` excitation.
fn raw_figure1() -> StateGraph {
    let mut b = SgBuilder::named("figure1-raw");
    let a = b.signal("a", SignalKind::Input);
    let bb = b.signal("b", SignalKind::Input);
    let c = b.signal("c", SignalKind::Output);
    let states: Vec<_> = [0b000, 0b001, 0b010, 0b011, 0b101, 0b110, 0b111, 0b110, 0b101, 0b100, 0b010, 0b001]
        .iter()
        .map(|&code| b.fresh_state(code))
        .collect();
    let [u0, u1, u2, u3, u5, u6, t, d6, d5, d4, d2, d1] = states[..] else {
        unreachable!()
    };
    b.edge_states(u0, (a, true), u1).unwrap();
    b.edge_states(u0, (bb, true), u2).unwrap();
    b.edge_states(u1, (bb, true), u3).unwrap();
    b.edge_states(u2, (a, true), u3).unwrap();
    b.edge_states(u1, (c, true), u5).unwrap();
    b.edge_states(u2, (c, true), u6).unwrap();
    b.edge_states(u3, (c, true), t).unwrap();
    b.edge_states(u5, (bb, true), t).unwrap();
    b.edge_states(u6, (a, true), t).unwrap();
    b.edge_states(t, (a, false), d6).unwrap();
    b.edge_states(t, (bb, false), d5).unwrap();
    b.edge_states(d6, (bb, false), d4).unwrap();
    b.edge_states(d6, (c, false), d2).unwrap();
    b.edge_states(d5, (a, false), d4).unwrap();
    b.edge_states(d5, (c, false), d1).unwrap();
    b.edge_states(d4, (c, false), u0).unwrap();
    b.edge_states(d2, (bb, false), u0).unwrap();
    b.edge_states(d1, (a, false), u0).unwrap();
    b.build_with_initial(u0).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sg = raw_figure1();
    let conflicts = sg.check_csc().unwrap_err();
    println!(
        "'{}': {} states, {} CSC conflicts — e.g. two states share code {:03b}",
        sg.name(),
        sg.num_states(),
        conflicts.len(),
        conflicts[0].code
    );

    // Synthesis refuses the raw graph: CSC is the method's minimal
    // requirement (it is what makes the derived logic unambiguous).
    match synthesize(&sg, &SynthesisOptions::default()) {
        Err(SynthesisError::Csc(v)) => {
            println!("synthesis refused: complete state coding violated ({} pairs)", v.len())
        }
        other => panic!("expected a CSC error, got {other:?}"),
    }

    // Repair by phase-signal insertion and retry.
    let fixed = sg.resolve_csc(3)?;
    println!(
        "\nrepaired with {} state signal(s): {} states, {} signals, CSC = {}",
        fixed
            .signal_ids()
            .filter(|&s| fixed.signal_name(s).starts_with("csc"))
            .count(),
        fixed.num_states(),
        fixed.num_signals(),
        fixed.check_csc().is_ok()
    );
    println!(
        "non-distributivity preserved: {}",
        !fixed.is_distributive()
    );

    let imp = synthesize(&fixed, &SynthesisOptions::default())?;
    println!("\n{}", imp.report(&fixed));

    let summary = monte_carlo(&fixed, &imp, &ConformanceConfig::default(), 20);
    println!(
        "monte carlo: {}/{} clean trials, {} transitions",
        summary.clean_trials, summary.trials, summary.total_transitions
    );
    assert!(summary.all_clean());
    Ok(())
}
