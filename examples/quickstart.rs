//! Quickstart: specify a controller, synthesize it with the N-SHOT flow,
//! inspect the result, and validate it against the specification under
//! random gate delays.
//!
//! Run with: `cargo run --example quickstart`

use nshot::core::{synthesize, SynthesisOptions};
use nshot::sg::{SgBuilder, SignalKind};
use nshot::sim::{check_conformance, monte_carlo, ConformanceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-channel fork controller: on request `r`, raise both grants
    // concurrently, wait for both acknowledges, then return to zero.
    // Codes are bit-vectors: bit 0 = r, 1 = g0, 2 = a0, 3 = g1, 4 = a1.
    let mut b = SgBuilder::named("quickstart");
    let r = b.signal("r", SignalKind::Input);
    let g0 = b.signal("g0", SignalKind::Output);
    let a0 = b.signal("a0", SignalKind::Input);
    let g1 = b.signal("g1", SignalKind::Output);
    let a1 = b.signal("a1", SignalKind::Input);

    b.edge_codes(0b00000, (r, true), 0b00001)?;
    // Up-phase grid: channel positions 0 = idle, 1 = granted, 2 = ack'd.
    let up = |p0: usize, p1: usize| -> u64 {
        let c = |p: usize, shift: usize| -> u64 {
            (match p {
                0 => 0b00u64,
                1 => 0b01,
                _ => 0b11,
            }) << shift
        };
        0b1 | c(p0, 1) | c(p1, 3)
    };
    for p0 in 0..3usize {
        for p1 in 0..3usize {
            if p0 < 2 {
                let (sig, val) = if p0 == 0 { (g0, true) } else { (a0, true) };
                b.edge_codes(up(p0, p1), (sig, val), up(p0 + 1, p1))?;
            }
            if p1 < 2 {
                let (sig, val) = if p1 == 0 { (g1, true) } else { (a1, true) };
                b.edge_codes(up(p0, p1), (sig, val), up(p0, p1 + 1))?;
            }
        }
    }
    // Return to zero: r- first, then each channel drops g then a.
    let down = |p0: usize, p1: usize| -> u64 {
        let c = |p: usize, shift: usize| -> u64 {
            (match p {
                2 => 0b11u64, // g and a still up
                1 => 0b10,    // g dropped, a still up
                _ => 0b00,
            }) << shift
        };
        c(p0, 1) | c(p1, 3)
    };
    b.edge_codes(up(2, 2), (r, false), down(2, 2))?;
    for p0 in 0..3usize {
        for p1 in 0..3usize {
            if p0 > 0 {
                let (sig, val) = if p0 == 2 { (g0, false) } else { (a0, false) };
                b.edge_codes(down(p0, p1), (sig, val), down(p0 - 1, p1))?;
            }
            if p1 > 0 {
                let (sig, val) = if p1 == 2 { (g1, false) } else { (a1, false) };
                b.edge_codes(down(p0, p1), (sig, val), down(p0, p1 - 1))?;
            }
        }
    }
    let sg = b.build(0)?;

    println!("specification '{}':", sg.name());
    println!("  states:           {}", sg.num_states());
    println!("  CSC:              {}", sg.check_csc().is_ok());
    println!("  semi-modular:     {}", sg.check_semi_modular().is_ok());
    println!("  distributive:     {}", sg.is_distributive());
    println!("  single traversal: {}", sg.is_single_traversal());

    let imp = synthesize(&sg, &SynthesisOptions::default())?;
    println!("\nN-SHOT implementation:");
    println!("  area:  {} library units", imp.area);
    println!("  delay: {:.1} ns (critical path)", imp.delay_ns);
    for s in &imp.signals {
        println!(
            "  {}: set = {} | reset = {} | init = {:?} | t_del = {:.2} ns",
            s.name, s.set_cover, s.reset_cover, s.init, s.delay.t_del_ns
        );
    }

    // Validate: one detailed trial, then a Monte-Carlo batch.
    let report = check_conformance(&sg, &imp, &ConformanceConfig::default());
    println!(
        "\nconformance: {} transitions, hazard-free = {}",
        report.transitions,
        report.is_hazard_free()
    );
    let summary = monte_carlo(&sg, &imp, &ConformanceConfig::default(), 20);
    println!(
        "monte carlo: {}/{} clean trials over {} transitions",
        summary.clean_trials, summary.trials, summary.total_transitions
    );
    assert!(summary.all_clean());
    Ok(())
}
