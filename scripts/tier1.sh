#!/usr/bin/env bash
# Tier-1 gate: hermetic build, full test suite, and a 2-circuit smoke run.
# Must pass with no network access — the workspace has zero external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier1: build (release, offline) =="
cargo build --release --workspace

echo "== tier1: tests =="
cargo test --release --workspace -q

echo "== tier1: 2-circuit smoke (synth + validate) =="
cargo run --release --bin assassin -- bench chu133
cargo run --release --bin assassin -- bench full

echo "tier1: OK"
