#!/usr/bin/env bash
# Tier-1 gate: hermetic build, full test suite, and a 2-circuit smoke run.
# Must pass with no network access — the workspace has zero external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier1: build (release, offline) =="
cargo build --release --workspace

echo "== tier1: tests =="
cargo test --release --workspace -q

echo "== tier1: deterministic property suites =="
for crate in nshot-sg nshot-stg nshot-logic nshot-netlist nshot-core nshot-sim nshot-gen; do
  cargo test --release -p "$crate" --features proptest -q
done

echo "== tier1: fuzz smoke (fixed seeds, bounded verify budget + deadline) =="
cargo run --release -p nshot-bench --bin nshot-fuzz -- \
  --seeds 0..200 --budget 50000 --deadline-ms 480000 \
  --out /tmp/BENCH_fuzz_smoke.json --archive tests/corpus/generated
grep -q '"new_violations": 0' /tmp/BENCH_fuzz_smoke.json \
  || { echo "fuzz smoke found an unarchived violation:"; cat /tmp/BENCH_fuzz_smoke.json; exit 1; }

echo "== tier1: generated-corpus regression (archived specs re-verify) =="
cargo run --release -p nshot-bench --bin nshot-fuzz -- \
  --corpus --archive tests/corpus/generated --budget 200000 \
  --out /tmp/BENCH_fuzz_corpus.json

echo "== tier1: wire frame-mutation smoke (>=200 mutants, zero panics) =="
# Mutated binary frames must decode to typed WireErrors — never a panic
# or over-read. The run re-archives the minimized witness per failure
# class, so a wire-format change shows up as a tests/corpus diff.
cargo run --release -p nshot-bench --bin nshot-fuzz -- \
  --wire-mutations 240 --wire-archive tests/corpus/malformed/wire \
  --out /tmp/BENCH_wire_fuzz.json
grep -q '"panics": 0' /tmp/BENCH_wire_fuzz.json \
  || { echo "wire mutation smoke panicked:"; cat /tmp/BENCH_wire_fuzz.json; exit 1; }

echo "== tier1: classify perf smoke (full suite analysis under budget) =="
cargo run --release -p nshot-bench --bin classify_smoke -- 20000

echo "== tier1: model-checker smoke (1-circuit proof, heartbeats on) =="
NSHOT_PROGRESS=stderr NSHOT_PROGRESS_MS=10 \
  cargo run --release -p nshot-bench --bin modelcheck -- chu133 /tmp/BENCH_mc_smoke.json \
  2> /tmp/mc_smoke_stderr.log
grep -q '"all_hazard_free": true' /tmp/BENCH_mc_smoke.json \
  || { echo "modelcheck smoke did not prove chu133"; exit 1; }
# With progress on, every check emits at least an opening and a final
# heartbeat; the verdicts above must be identical either way (the run's
# own cross-thread byte-identity assertion covers that).
grep -q '{"hb":"mc:chu133","seq":' /tmp/mc_smoke_stderr.log \
  || { echo "no heartbeat emitted:"; cat /tmp/mc_smoke_stderr.log; exit 1; }
grep -q '"final":true' /tmp/mc_smoke_stderr.log \
  || { echo "no final heartbeat emitted:"; cat /tmp/mc_smoke_stderr.log; exit 1; }

echo "== tier1: disabled-observability overhead gate (<2%) =="
cargo run --release -p nshot-bench --bin obs_overhead

echo "== tier1: dashboard regeneration (deterministic, committed copy fresh) =="
cargo run --release -p nshot-bench --bin nshot-report -- --out /tmp/DASHBOARD_a.md
cargo run --release -p nshot-bench --bin nshot-report -- --out /tmp/DASHBOARD_b.md
cmp -s /tmp/DASHBOARD_a.md /tmp/DASHBOARD_b.md \
  || { echo "nshot-report output is not deterministic"; exit 1; }
cmp -s /tmp/DASHBOARD_a.md docs/DASHBOARD.md \
  || { echo "docs/DASHBOARD.md is stale; regenerate with nshot-report"; exit 1; }

echo "== tier1: 2-circuit smoke (synth + validate) =="
cargo run --release --bin assassin -- bench chu133
cargo run --release --bin assassin -- bench full

echo "== tier1: server smoke (ready-line discovery, synth + stats + shutdown) =="
# The server prints `ready ADDR` on stdout once it is accepting — no
# port-file polling race (a file can exist but still be mid-write; the
# ready line is written after the bind and flushed atomically).
SERVER_LOG="$(mktemp)"
cargo run --release -p nshot-server --bin nshot-serve > "$SERVER_LOG" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(awk '/^ready /{print $2; exit}' "$SERVER_LOG")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never printed ready"; kill "$SERVER_PID"; exit 1; }

echo "== tier1: metrics op smoke =="
exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
printf '{"id":"m","op":"metrics"}\n' >&3
IFS= read -r METRICS_LINE <&3
exec 3<&- 3>&-
case "$METRICS_LINE" in
  *nshot_requests_total*)
    case "$METRICS_LINE" in
      *nshot_stage_duration_us*) echo "metrics op: OK" ;;
      *) echo "metrics op missing stage histograms: $METRICS_LINE"; kill "$SERVER_PID"; exit 1 ;;
    esac ;;
  *) echo "metrics op missing server counters: $METRICS_LINE"; kill "$SERVER_PID"; exit 1 ;;
esac
# The wire decode-error counter registers at bind, so every scrape carries
# it — the series the fleet alerts on when a peer ships broken frames.
case "$METRICS_LINE" in
  *nshot_wire_decode_errors_total*) : ;;
  *) echo "metrics op missing wire decode-error counter: $METRICS_LINE"; kill "$SERVER_PID"; exit 1 ;;
esac

cargo run --release -p nshot-bench --bin loadgen -- \
  --addr "$ADDR" --concurrency 2 --passes 1 --circuits chu133,full \
  --no-shutdown --out /tmp/BENCH_server_smoke.json
# Same workload again with the binary framing negotiated per connection:
# loadgen's per-response byte-identity checks prove transport equivalence
# end to end. This second run issues the shutdown.
cargo run --release -p nshot-bench --bin loadgen -- \
  --addr "$ADDR" --concurrency 2 --passes 1 --circuits chu133,full \
  --format binary --out /tmp/BENCH_server_smoke_binary.json
wait "$SERVER_PID"
rm -f "$SERVER_LOG"

echo "== tier1: wire-cmp smoke (both transports + both store encodings) =="
cargo run --release -p nshot-bench --bin loadgen -- \
  --wire-cmp --circuits chu133,full,hazard --out /tmp/BENCH_server_smoke.json
grep -q '"byte_identical": true' /tmp/BENCH_server_smoke.json \
  || { echo "wire-cmp smoke lost byte identity:"; cat /tmp/BENCH_server_smoke.json; exit 1; }

echo "== tier1: shard smoke (front + 2 spawned backends over binary framing, byte-identity, merged metrics, drain) =="
# The front negotiates nshot-wire framing with its backends while clients
# stay on NDJSON — the proxy re-encodes across formats per request.
SHARD_LOG="$(mktemp)"
./target/release/nshot-shard --spawn 2 --backend-format binary > "$SHARD_LOG" &
SHARD_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(awk '/^ready /{print $2; exit}' "$SHARD_LOG")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "shard front never printed ready"; kill "$SHARD_PID"; exit 1; }
# Every response proxied through the front must be byte-identical to
# direct synthesis — loadgen checks that per request.
cargo run --release -p nshot-bench --bin loadgen -- \
  --addr "$ADDR" --concurrency 2 --passes 1 --circuits chu133,full \
  --no-shutdown --out /tmp/BENCH_shard_smoke.json
# The metrics op fans out and merges both backends' series under their
# shard labels; the shutdown op fans the graceful drain out to both.
exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
printf '{"id":"m","op":"metrics"}\n' >&3
IFS= read -r SHARD_METRICS <&3
printf '{"id":"ctl","op":"shutdown"}\n' >&3
IFS= read -r SHARD_ACK <&3
exec 3<&- 3>&-
echo "$SHARD_METRICS" | grep -q 'shard=\\"0\\"' \
  || { echo "merged metrics missing shard 0 series: $SHARD_METRICS"; exit 1; }
echo "$SHARD_METRICS" | grep -q 'shard=\\"1\\"' \
  || { echo "merged metrics missing shard 1 series: $SHARD_METRICS"; exit 1; }
echo "$SHARD_ACK" | grep -q '"shards_drained":2' \
  || { echo "shutdown fan-out did not drain both shards: $SHARD_ACK"; exit 1; }
wait "$SHARD_PID"
rm -f "$SHARD_LOG"

echo "== tier1: store smoke (batch compile, corrupt tail, recover, warm start) =="
STORE_DIR="$(mktemp -d)"
cargo run --release -p nshot-server --bin nshot-batch -- \
  --store "$STORE_DIR" --circuits chu133,full,hazard --fsync always
# Tear the newest segment's tail: a crash mid-append. Recovery must drop
# exactly the torn record and the incremental rerun recompile only it.
SEG="$(ls "$STORE_DIR"/seg-*.log | sort | tail -1)"
truncate -s -7 "$SEG"
BATCH_OUT="$(cargo run --release -p nshot-server --bin nshot-batch -- \
  --store "$STORE_DIR" --circuits chu133,full,hazard --fsync always 2>&1)"
echo "$BATCH_OUT" | grep -q "dropped 1," \
  || { echo "store recovery did not drop the torn record:"; echo "$BATCH_OUT"; exit 1; }
echo "$BATCH_OUT" | grep -q "compiled 1, cached 2, failed 0" \
  || { echo "incremental recompile mismatch:"; echo "$BATCH_OUT"; exit 1; }
# Warm start off the batch-written store: loadgen's byte-identity checks
# prove a warm server answers exactly what cold synthesis would, and the
# recorded warm hit rate proves the answers came from the store.
cargo run --release -p nshot-bench --bin loadgen -- \
  --concurrency 2 --passes 1 --circuits chu133,full --store "$STORE_DIR" \
  --out /tmp/BENCH_store_smoke.json
grep -q '"warm_hit_rate": 1.0000' /tmp/BENCH_store_smoke.json \
  || { echo "warm-start hit rate below 1.0:"; cat /tmp/BENCH_store_smoke.json; exit 1; }
rm -rf "$STORE_DIR"

echo "tier1: OK"
