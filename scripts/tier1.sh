#!/usr/bin/env bash
# Tier-1 gate: hermetic build, full test suite, and a 2-circuit smoke run.
# Must pass with no network access — the workspace has zero external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier1: build (release, offline) =="
cargo build --release --workspace

echo "== tier1: tests =="
cargo test --release --workspace -q

echo "== tier1: disabled-tracing overhead gate (<2%) =="
cargo run --release -p nshot-bench --bin obs_overhead

echo "== tier1: 2-circuit smoke (synth + validate) =="
cargo run --release --bin assassin -- bench chu133
cargo run --release --bin assassin -- bench full

echo "== tier1: server smoke (ephemeral port, synth + stats + shutdown) =="
PORT_FILE="$(mktemp)"
cargo run --release -p nshot-server --bin nshot-serve -- --port-file "$PORT_FILE" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
ADDR="$(cat "$PORT_FILE")"
[ -n "$ADDR" ] || { echo "server never bound"; kill "$SERVER_PID"; exit 1; }

echo "== tier1: metrics op smoke =="
exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
printf '{"id":"m","op":"metrics"}\n' >&3
IFS= read -r METRICS_LINE <&3
exec 3<&- 3>&-
case "$METRICS_LINE" in
  *nshot_requests_total*)
    case "$METRICS_LINE" in
      *nshot_stage_duration_us*) echo "metrics op: OK" ;;
      *) echo "metrics op missing stage histograms: $METRICS_LINE"; kill "$SERVER_PID"; exit 1 ;;
    esac ;;
  *) echo "metrics op missing server counters: $METRICS_LINE"; kill "$SERVER_PID"; exit 1 ;;
esac

cargo run --release -p nshot-bench --bin loadgen -- \
  --addr "$ADDR" --concurrency 2 --passes 1 --circuits chu133,full \
  --out /tmp/BENCH_server_smoke.json
wait "$SERVER_PID"
rm -f "$PORT_FILE"

echo "tier1: OK"
