#!/usr/bin/env bash
# trace2flame.sh — collapse an NSHOT_TRACE NDJSON span log into folded
# stacks, the input format of flamegraph.pl / inferno / speedscope.
#
#   NSHOT_TRACE=/tmp/trace.ndjson cargo test -q
#   scripts/trace2flame.sh /tmp/trace.ndjson > /tmp/trace.folded
#   flamegraph.pl /tmp/trace.folded > flame.svg   # (external tool)
#
# Each trace line looks like
#   {"trace":3,"span":"minimize","stack":"classify;minimize","start_us":12,"us":48,"thread":2}
# and becomes one folded-stack sample "classify;minimize 48" with the
# span's own microseconds as the weight. Durations of identical stacks are
# summed, so the output is directly plottable. Only leaf spans carry their
# own time here; parents also appear as their own (shorter) stacks, which
# flamegraph tooling renders correctly because child time is exclusive in
# this trace (a parent's `us` includes its children — pass --exclusive to
# subtract child time from parents instead).
set -euo pipefail

exclusive=0
input=""
for arg in "$@"; do
  case "$arg" in
    --exclusive) exclusive=1 ;;
    --help|-h)
      echo "usage: trace2flame.sh [--exclusive] TRACE.ndjson" >&2
      exit 0
      ;;
    *) input="$arg" ;;
  esac
done
[ -n "$input" ] || { echo "usage: trace2flame.sh [--exclusive] TRACE.ndjson" >&2; exit 1; }
[ -r "$input" ] || { echo "trace2flame.sh: cannot read '$input'" >&2; exit 1; }

# The writer emits fields in a fixed order, so a field-anchored extraction
# is exact, not heuristic. Still, parse defensively: skip lines that do
# not carry both a stack and a duration.
awk -v exclusive="$exclusive" '
{
  if (match($0, /"stack":"[^"]*"/) == 0) next
  stack = substr($0, RSTART + 9, RLENGTH - 10)
  if (match($0, /"us":[0-9]+/) == 0) next
  us = substr($0, RSTART + 5, RLENGTH - 5) + 0
  if (stack == "") next
  total[stack] += us
}
END {
  if (exclusive) {
    # Subtract each stack'\''s time from its parent prefix so every frame
    # carries only its own (exclusive) time.
    for (s in total) {
      n = split(s, parts, ";")
      if (n > 1) {
        parent = parts[1]
        for (i = 2; i < n; i++) parent = parent ";" parts[i]
        child_sum[parent] += total[s]
      }
    }
    for (s in total) {
      t = total[s] - child_sum[s]
      if (t > 0) print s, t
    }
  } else {
    for (s in total) print s, total[s]
  }
}' "$input" | sort
