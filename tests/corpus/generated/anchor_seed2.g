# nshot-fuzz regression anchor
# seed: 2
# recipe: choice[b=3,p=1]
.model gen2
.inputs f0_x0_0 f0_x1_0 f0_x2_0
.outputs f0_o0_0 f0_o1_0 f0_o2_0
.graph
f0_x0_0+ f0_o0_0+
f0_x0_0- f0_o0_0-
f0_x1_0+ f0_o1_0+
f0_x1_0- f0_o1_0-
f0_x2_0+ f0_o2_0+
f0_x2_0- f0_o2_0-
f0_o0_0+ f0_x0_0-
f0_o0_0- p0
f0_o1_0+ f0_x1_0-
f0_o1_0- p0
f0_o2_0+ f0_x2_0-
f0_o2_0- p0
p0 f0_x0_0+ f0_x1_0+ f0_x2_0+
.marking { p0 }
.end
