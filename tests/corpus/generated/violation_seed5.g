# nshot-fuzz violation artifact
# seed: 5
# original recipe: choice[b=4,p=3]
# minimized recipe: choice[b=3,p=3]
# detail: model checker: counterexample: gen5 — unexpected -f0_o1 in state 1100000000011 (26 steps)
# reproduce: nshot-fuzz --seeds 5..6 --budget 200000
.model gen5
.inputs f0_x0_0 f0_x0_1 f0_x0_2 f0_x1_0 f0_x1_1 f0_x1_2 f0_x2_0 f0_x2_1 f0_x2_2
.outputs f0_o1 f0_o2 f0_o0_0 f0_o1_0 f0_o2_0
.graph
f0_x0_0+ f0_o0_0+
f0_x0_0- f0_o0_0-
f0_x0_1+ f0_o1+
f0_x0_1- f0_o1-
f0_x0_2+ f0_o2+
f0_x0_2- p11
f0_x1_0+ f0_o1_0+
f0_x1_0- f0_o1_0-
f0_x1_1+ f0_o1+/2
f0_x1_1- f0_o1-/2
f0_x1_2+ f0_o2+/2
f0_x1_2- p11
f0_x2_0+ f0_o2_0+
f0_x2_0- f0_o2_0-
f0_x2_1+ f0_o1+/3
f0_x2_1- f0_o1-/3
f0_x2_2+ f0_o2+/3
f0_x2_2- p11
f0_o1+ f0_x0_2+
f0_o1+/2 f0_x1_2+
f0_o1+/3 f0_x2_2+
f0_o1- f0_x0_2-
f0_o1-/2 f0_x1_2-
f0_o1-/3 f0_x2_2-
f0_o2+ f0_x0_0-
f0_o2+/2 f0_x1_0-
f0_o2+/3 f0_x2_0-
f0_o2- p0
f0_o0_0+ f0_x0_1+
f0_o0_0- f0_x0_1-
f0_o1_0+ f0_x1_1+
f0_o1_0- f0_x1_1-
f0_o2_0+ f0_x2_1+
f0_o2_0- f0_x2_1-
p0 f0_x0_0+ f0_x1_0+ f0_x2_0+
p11 f0_o2-
.marking { p0 }
.end
