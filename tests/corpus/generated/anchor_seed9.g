# nshot-fuzz regression anchor
# seed: 9
# recipe: par_handshakes[k=1]
.model gen9
.inputs f0_r0
.outputs f0_g0
.graph
f0_r0+ f0_g0+
f0_r0- f0_g0-
f0_g0+ f0_r0-
f0_g0- f0_r0+
.marking { <f0_g0-,f0_r0+> }
.end
