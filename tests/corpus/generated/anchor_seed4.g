# nshot-fuzz regression anchor
# seed: 4
# recipe: or_causal[t=1]
.model gen4
.inputs f0_a f0_b f0_u0
.outputs f0_c f0_t0
.internal f0_d
.graph
f0_a+ p1
f0_a+/2 p3
f0_a+/3 p6
f0_a- p10
f0_a-/2 p12
f0_a-/3 p15
f0_b+ p2
f0_b+/2 p3
f0_b+/3 p6
f0_b- p11
f0_b-/2 p12
f0_b-/3 p15
f0_u0+ f0_d+
f0_u0- f0_d-
f0_c+ f0_b+/3
f0_c+/2 f0_a+/3
f0_c+/3 p6
f0_c- f0_b-/3
f0_c-/2 f0_a-/3
f0_c-/3 p15
f0_t0+ f0_u0+
f0_t0- f0_u0-
f0_d+ p9
f0_d- p0
p0 f0_a+ f0_b+
p1 f0_b+/2 f0_c+
p10 f0_b-/2 f0_c-
p11 f0_a-/2 f0_c-/2
p12 f0_c-/3
p15 f0_t0-
p2 f0_a+/2 f0_c+/2
p3 f0_c+/3
p6 f0_t0+
p9 f0_a- f0_b-
.marking { p0 }
.end
