.model unbounded
.inputs a
.outputs b
.graph
a+ a-
a- a+
a- b+
b+ b-
b- b+
.marking { <a-,a+> <b-,b+> }
.end
