.model unmarkedcycle
.inputs a
.outputs y z
.graph
a+ y+
y+ a-
a- y-
y- a+
z+ z-
z- z+
.marking { <y-,a+> }
.end
