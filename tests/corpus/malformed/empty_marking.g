.model emptymark
.inputs a
.outputs y
.graph
a+ y+
y+ a-
a- y-
y- a+
.marking { }
.end
