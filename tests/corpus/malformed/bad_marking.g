.model badmark
.inputs r
.outputs g
.graph
r+ g+
g+ r-
r- g-
g- r+
.marking { <x+,y+> }
.end
