.model duptrans
.inputs a
.outputs y
.graph
a+ y+
a+ y+
y+ a-
a- y-
y- a+
.marking { <y-,a+> }
.end
