.model truncated
.inputs r
.outputs g
.graph
r+ g+
g+ r
