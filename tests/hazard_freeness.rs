//! The paper's central experimental claim, as an integration test: every
//! synthesized circuit is externally hazard-free under randomly sampled
//! gate delays — and the oracle is not vacuous (it catches sabotage).

use nshot::core::{assemble_netlist, synthesize, SynthesisOptions};
use nshot::netlist::DelayModel;
use nshot::sim::{check_conformance, monte_carlo, ConformanceConfig, HazardViolation, SimConfig};

/// Medium specimens spanning the archetypes.
fn specimens() -> Vec<&'static str> {
    vec!["full", "chu133", "hazard", "vbe5b", "sbuf-send-ctl", "pmcm1", "pmcm2", "combuf2"]
}

#[test]
fn suite_is_externally_hazard_free() {
    for name in specimens() {
        let sg = nshot::benchmarks::by_name(name).expect("in suite").build();
        let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
        let config = ConformanceConfig {
            max_transitions: 120,
            ..ConformanceConfig::default()
        };
        let summary = monte_carlo(&sg, &imp, &config, 5);
        assert!(
            summary.all_clean(),
            "{name}: {:?}",
            summary.first_failure.map(|f| f.violations)
        );
    }
}

#[test]
fn hazard_freeness_holds_across_omega_values() {
    let sg = nshot::benchmarks::by_name("pmcm2").expect("in suite").build();
    let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
    for omega_ps in [100, 300, 600, 1_000] {
        let config = ConformanceConfig {
            max_transitions: 150,
            sim: SimConfig {
                omega_ps,
                ..SimConfig::default()
            },
            ..ConformanceConfig::default()
        };
        let report = check_conformance(&sg, &imp, &config);
        assert!(report.is_hazard_free(), "ω={omega_ps}: {:?}", report.violations);
    }
}

#[test]
fn oracle_catches_swapped_covers() {
    // Sanity of the oracle itself: sabotage the circuit, expect detection.
    let sg = nshot::benchmarks::by_name("full").expect("in suite").build();
    let good = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
    let covers: Vec<_> = good
        .signals
        .iter()
        .map(|s| (s.signal, s.reset_cover.clone(), s.set_cover.clone())) // swapped!
        .collect();
    let (netlist, _) =
        assemble_netlist(&sg, &covers, &DelayModel::nominal()).expect("assembles");
    let mut broken = good;
    broken.netlist = netlist;
    let config = ConformanceConfig {
        input_delay_ps: (20_000, 30_000),
        ..ConformanceConfig::default()
    };
    let report = check_conformance(&sg, &broken, &config);
    assert!(!report.is_hazard_free(), "sabotage must be detected");
}

#[test]
fn oracle_catches_dead_outputs() {
    let sg = nshot::benchmarks::by_name("full").expect("in suite").build();
    let good = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
    let n = sg.num_signals();
    let covers: Vec<_> = good
        .signals
        .iter()
        .map(|s| {
            (
                s.signal,
                nshot::logic::Cover::empty(n),
                nshot::logic::Cover::empty(n),
            )
        })
        .collect();
    let (netlist, _) =
        assemble_netlist(&sg, &covers, &DelayModel::nominal()).expect("assembles");
    let mut broken = good;
    broken.netlist = netlist;
    let report = check_conformance(&sg, &broken, &ConformanceConfig::default());
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, HazardViolation::Deadlock { .. })));
}

#[test]
fn trigger_repaired_circuit_is_hazard_free() {
    // The Figure 7(b)-style circuit: a free-running input toggles inside
    // the excitation regions, so trigger regions span several states and
    // the SOP emits pulse streams the MHS flip-flop must convert into
    // single transitions.
    use nshot::sg::{SgBuilder, SignalKind};
    let mut b = SgBuilder::named("fig7b");
    let r = b.signal("r", SignalKind::Input);
    let x = b.signal("x", SignalKind::Input);
    let y = b.signal("y", SignalKind::Output);
    b.edge_codes(0b000, (r, true), 0b001).unwrap();
    b.edge_codes(0b000, (x, true), 0b010).unwrap();
    b.edge_codes(0b010, (r, true), 0b011).unwrap();
    b.edge_codes(0b010, (x, false), 0b000).unwrap();
    b.edge_codes(0b001, (x, true), 0b011).unwrap();
    b.edge_codes(0b001, (y, true), 0b101).unwrap();
    b.edge_codes(0b011, (x, false), 0b001).unwrap();
    b.edge_codes(0b011, (y, true), 0b111).unwrap();
    b.edge_codes(0b101, (x, true), 0b111).unwrap();
    b.edge_codes(0b101, (r, false), 0b100).unwrap();
    b.edge_codes(0b111, (x, false), 0b101).unwrap();
    b.edge_codes(0b111, (r, false), 0b110).unwrap();
    b.edge_codes(0b100, (x, true), 0b110).unwrap();
    b.edge_codes(0b100, (y, false), 0b000).unwrap();
    b.edge_codes(0b110, (x, false), 0b100).unwrap();
    b.edge_codes(0b110, (y, false), 0b010).unwrap();
    let sg = b.build(0b000).unwrap();
    assert!(!sg.is_single_traversal());
    let imp = synthesize(&sg, &SynthesisOptions::default()).expect("Theorem 1 holds here");
    let summary = monte_carlo(
        &sg,
        &imp,
        &ConformanceConfig {
            max_transitions: 200,
            ..ConformanceConfig::default()
        },
        10,
    );
    assert!(summary.all_clean(), "{:?}", summary.first_failure);
}

#[test]
fn multi_output_circuits_are_hazard_free() {
    for name in ["full", "pmcm1", "sbuf-send-ctl"] {
        let sg = nshot::benchmarks::by_name(name).expect("in suite").build();
        let imp =
            synthesize(&sg, &SynthesisOptions::multi_output()).expect("synthesizes");
        let summary = monte_carlo(
            &sg,
            &imp,
            &ConformanceConfig {
                max_transitions: 120,
                ..ConformanceConfig::default()
            },
            5,
        );
        assert!(summary.all_clean(), "{name}: {:?}", summary.first_failure);
    }
}

#[test]
fn determinism_of_trials() {
    let sg = nshot::benchmarks::by_name("chu133").expect("in suite").build();
    let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
    let config = ConformanceConfig {
        max_transitions: 80,
        ..ConformanceConfig::default()
    };
    let a = check_conformance(&sg, &imp, &config);
    let b = check_conformance(&sg, &imp, &config);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.end_time_ps, b.end_time_ps);
}
