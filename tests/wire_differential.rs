//! Differential proof of the binary wire protocol.
//!
//! Three layers of evidence that `nshot-wire` framing and the `wirecodec`
//! record encodings are a faithful second transport, not a fork of the
//! protocol:
//!
//! 1. **Encode→decode identity** — every Table 2 suite circuit and 200
//!    `nshot-gen` seeded specs ride through request frames and artifact
//!    records and come back byte-identical (decode → re-encode is the
//!    identity on valid frames).
//! 2. **Transport equivalence** — a live server answers the same synth
//!    request over NDJSON and over negotiated binary framing with the same
//!    response object (all fields except the per-call `cached`/
//!    `service_us`/`trace`/`timing`), at 1 worker and at 8 workers under
//!    8 concurrent client pairs.
//! 3. **Golden fixtures** — FNV-1a digests of the deterministic wire
//!    encodings for three circuits are pinned under `tests/golden/wire/`;
//!    any change to the frame layout or record encodings shows up as a
//!    one-line diff and demands a `WIRE_VERSION` bump. Re-bless with
//!    `NSHOT_BLESS=1 cargo test --test wire_differential` and review the
//!    diff like any other code.

use nshot::core::{synthesize, Minimizer, SynthesisOptions};
use nshot::server::wirecodec;
use nshot::server::{
    client::Client, process_synth, Deadline, Envelope, Json, Method, OutputFormat, Request,
    Server, ServerConfig, SynthRequest,
};
use nshot::wire::{decode_frame, tags, WIRE_VERSION};
use std::fmt::Write as _;
use std::path::PathBuf;

/// FNV-1a, the same stable hash the golden netlist artifacts use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn synth_request(spec: &str) -> SynthRequest {
    SynthRequest {
        spec: spec.into(),
        method: Method::Nshot,
        minimizer: Minimizer::Heuristic,
        trials: 0,
        format: OutputFormat::Blif,
        share: false,
    }
}

fn synth_envelope(id: &str, spec: &str) -> Envelope {
    Envelope {
        id: Json::Str(id.into()),
        request: Request::Synth(synth_request(spec)),
    }
}

/// The NDJSON form of the same request `synth_envelope` encodes.
fn synth_line(id: &str, spec: &str) -> String {
    Json::Obj(vec![
        ("id".into(), Json::Str(id.into())),
        ("op".into(), Json::Str("synth".into())),
        ("spec".into(), Json::Str(spec.into())),
        ("format".into(), Json::Str("blif".into())),
    ])
    .to_string()
}

/// Request and spec-artifact encodings must survive a decode→re-encode
/// roundtrip byte for byte, and the decoded spec text must be untouched.
fn assert_spec_identity(name: &str, spec: &str) {
    // Request frame.
    let frame = wirecodec::encode_request(&synth_envelope(name, spec))
        .unwrap_or_else(|e| panic!("{name}: encode request: {e}"));
    let (decoded, used) =
        decode_frame(&frame).unwrap_or_else(|e| panic!("{name}: decode request frame: {e}"));
    assert_eq!(used, frame.len(), "{name}: request frame has trailing bytes");
    assert_eq!(decoded.tag, tags::REQUEST, "{name}");
    let env = match wirecodec::decode_request(&decoded.payload) {
        Ok(env) => env,
        Err(e) => panic!("{name}: decode request payload: {e:?}"),
    };
    match &env.request {
        Request::Synth(req) => assert_eq!(req.spec, spec, "{name}: spec text drifted"),
        other => panic!("{name}: decoded to {other:?}"),
    }
    let reencoded = wirecodec::encode_request(&env).expect("re-encode");
    assert_eq!(reencoded, frame, "{name}: request re-encode is not the identity");

    // Spec artifact record.
    let artifact = wirecodec::encode_artifact(tags::SPEC, spec);
    let (decoded, used) =
        decode_frame(&artifact).unwrap_or_else(|e| panic!("{name}: decode spec artifact: {e}"));
    assert_eq!(used, artifact.len(), "{name}: artifact frame has trailing bytes");
    let text = wirecodec::decode_artifact(&decoded)
        .unwrap_or_else(|e| panic!("{name}: decode artifact text: {e}"));
    assert_eq!(text, spec, "{name}: artifact text drifted");
    assert_eq!(
        decoded.encode(),
        artifact,
        "{name}: artifact re-encode is not the identity"
    );
}

#[test]
fn suite_specs_roundtrip_byte_identically() {
    for bench in nshot::benchmarks::suite() {
        let spec = bench.build().to_text();
        assert_spec_identity(bench.name, &spec);
    }
}

#[test]
fn generated_specs_roundtrip_byte_identically() {
    let cfg = nshot::gen::GenConfig::default();
    let mut accepted = 0usize;
    for seed in 0..1000u64 {
        if accepted == 200 {
            break;
        }
        let Ok(spec) = nshot::gen::draw(seed, &cfg) else {
            continue; // rejected draw — not a spec, nothing to encode
        };
        accepted += 1;
        assert_spec_identity(&format!("gen{seed}"), &spec.sg.to_text());
    }
    assert_eq!(accepted, 200, "generator dried up before 200 specs");
}

/// Netlist/certificate records and full response encodings, on circuits
/// that are cheap enough to synthesize in a debug test run.
#[test]
fn response_encodings_roundtrip() {
    for name in ["chu133", "hybridf", "vbe10b"] {
        let spec = nshot::benchmarks::by_name(name).expect("in suite").build().to_text();
        let resp = process_synth(&synth_request(&spec), &Deadline::unlimited());
        assert_eq!(resp.code, 200, "{name}");

        // Store value encoding (segment `value_version` 2).
        let value = wirecodec::encode_response_value(resp.code, resp.status, &resp.body);
        let back = wirecodec::decode_response_value(&value)
            .unwrap_or_else(|e| panic!("{name}: decode store value: {e}"));
        assert_eq!(back.code, resp.code, "{name}");
        assert_eq!(back.status, resp.status, "{name}");
        assert_eq!(back.body, resp.body, "{name}: store value body drifted");

        // The framed response stream a binary connection receives.
        let stream = wirecodec::encode_response_frames(
            &Json::Str(name.into()),
            resp.code,
            resp.status,
            &resp.body,
            false,
            0,
            0,
            "",
        )
        .concat();
        let obj = wirecodec::read_response(&mut std::io::Cursor::new(&stream))
            .unwrap_or_else(|e| panic!("{name}: read response stream: {e}"));
        for (key, expected) in &resp.body {
            assert_eq!(
                obj.get(key),
                Some(expected),
                "{name}: response field `{key}` drifted across framing"
            );
        }

        // Netlist artifact record carries the BLIF byte-identically.
        let blif = resp
            .body
            .iter()
            .find(|(k, _)| k == "blif")
            .and_then(|(_, v)| v.as_str())
            .expect("blif field");
        let artifact = wirecodec::encode_artifact(tags::NETLIST, blif);
        let (frame, _) = decode_frame(&artifact).expect("decode netlist artifact");
        assert_eq!(
            wirecodec::decode_artifact(&frame).expect("netlist text"),
            blif,
            "{name}"
        );
    }
}

/// Strip the per-call fields and render: two transports answered the same
/// request iff these strings are equal.
fn canonical(mut obj: Json) -> String {
    if let Json::Obj(pairs) = &mut obj {
        pairs.retain(|(k, _)| {
            !matches!(k.as_str(), "cached" | "service_us" | "trace" | "timing")
        });
    }
    obj.to_string()
}

/// One connection pair (NDJSON + negotiated binary) replaying `specs`
/// against a live server, asserting transport equivalence per request.
fn compare_transports(addr: std::net::SocketAddr, specs: &[(String, String)]) {
    let mut json_conn = Client::connect(addr).expect("connect json");
    let mut bin_conn = Client::connect(addr).expect("connect binary");
    bin_conn.upgrade_binary().expect("upgrade");
    for (name, spec) in specs {
        let via_json = json_conn
            .roundtrip_json(&synth_line(name, spec))
            .unwrap_or_else(|e| panic!("{name}: json roundtrip: {e}"));
        let via_binary = bin_conn
            .roundtrip_binary(&synth_envelope(name, spec))
            .unwrap_or_else(|e| panic!("{name}: binary roundtrip: {e}"));
        assert_eq!(
            canonical(via_json),
            canonical(via_binary),
            "{name}: transports disagree"
        );
    }
}

#[test]
fn binary_and_json_transports_answer_identically() {
    let specs: Vec<(String, String)> = ["chu133", "hybridf", "vbe10b"]
        .iter()
        .map(|n| {
            let spec = nshot::benchmarks::by_name(n).expect("in suite").build().to_text();
            ((*n).to_owned(), spec)
        })
        .collect();

    // Single worker: strictly ordered service.
    let server = Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    compare_transports(server.local_addr(), &specs);
    server.shutdown();
    server.wait();

    // Eight workers, eight concurrent connection pairs: equivalence must
    // hold under contention and cache hits alike.
    let server = Server::bind(ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let specs = &specs;
            s.spawn(move || compare_transports(addr, specs));
        }
    });
    server.shutdown();
    server.wait();
}

fn golden_wire_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("wire")
}

/// Digest every deterministic wire encoding of one circuit: the request
/// frame, the artifact records, the store value and the framed response
/// stream (with the per-call head fields pinned to zero).
fn render_wire_fixture(name: &str) -> String {
    let spec = nshot::benchmarks::by_name(name).expect("in suite").build().to_text();
    let request = wirecodec::encode_request(&synth_envelope(name, &spec)).expect("encode");
    let spec_frame = wirecodec::encode_artifact(tags::SPEC, &spec);
    let imp = synthesize(
        &nshot::benchmarks::by_name(name).expect("in suite").build(),
        &SynthesisOptions::default(),
    )
    .expect("synthesize");
    let netlist_frame = wirecodec::encode_artifact(tags::NETLIST, &imp.netlist.to_blif());
    let resp = process_synth(&synth_request(&spec), &Deadline::unlimited());
    let value = wirecodec::encode_response_value(resp.code, resp.status, &resp.body);
    let stream = wirecodec::encode_response_frames(
        &Json::Str(name.into()),
        resp.code,
        resp.status,
        &resp.body,
        false,
        0,
        0,
        "",
    )
    .concat();

    let mut out = String::new();
    writeln!(out, "circuit: {name}").unwrap();
    writeln!(out, "wire_version: {WIRE_VERSION}").unwrap();
    writeln!(out, "request_fnv1a: {:#018x}", fnv1a(&request)).unwrap();
    writeln!(out, "request_bytes: {}", request.len()).unwrap();
    writeln!(out, "spec_frame_fnv1a: {:#018x}", fnv1a(&spec_frame)).unwrap();
    writeln!(out, "netlist_frame_fnv1a: {:#018x}", fnv1a(&netlist_frame)).unwrap();
    writeln!(out, "store_value_fnv1a: {:#018x}", fnv1a(&value)).unwrap();
    writeln!(out, "store_value_bytes: {}", value.len()).unwrap();
    writeln!(out, "response_stream_fnv1a: {:#018x}", fnv1a(&stream)).unwrap();
    writeln!(out, "response_stream_bytes: {}", stream.len()).unwrap();
    out
}

/// The pinned circuits: small enough to synthesize in a debug test run,
/// diverse enough to cover compressed and uncompressed payloads.
const GOLDEN_WIRE_CIRCUITS: [&str; 3] = ["chu133", "hybridf", "vbe10b"];

#[test]
fn golden_wire_fixtures_match() {
    let bless = std::env::var("NSHOT_BLESS").is_ok_and(|v| v == "1");
    let dir = golden_wire_dir();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }

    let mut drifted = Vec::new();
    let mut expected_files = Vec::new();
    for name in GOLDEN_WIRE_CIRCUITS {
        let actual = render_wire_fixture(name);
        let path = dir.join(format!("{name}.txt"));
        expected_files.push(format!("{name}.txt"));
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == actual => {}
            Ok(golden) => {
                if bless {
                    std::fs::write(&path, &actual).unwrap();
                } else {
                    let diff: Vec<String> = golden
                        .lines()
                        .zip(actual.lines())
                        .filter(|(g, a)| g != a)
                        .map(|(g, a)| format!("  - {g}\n  + {a}"))
                        .collect();
                    drifted.push(format!("{name}:\n{}", diff.join("\n")));
                }
            }
            Err(_) => {
                if bless {
                    std::fs::write(&path, &actual).unwrap();
                } else {
                    drifted.push(format!("{name}: golden wire fixture missing"));
                }
            }
        }
    }
    assert!(
        drifted.is_empty(),
        "{} wire fixture(s) drifted — an unversioned wire-format change? \
         Bump WIRE_VERSION, then NSHOT_BLESS=1 to re-bless:\n{}",
        drifted.len(),
        drifted.join("\n")
    );

    // Stale fixtures are drift too.
    let mut stale = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("tests/golden/wire/ must exist") {
        let file = entry.unwrap().file_name().into_string().unwrap();
        if !expected_files.iter().any(|e| e == &file) {
            stale.push(file);
        }
    }
    assert!(stale.is_empty(), "stale golden wire fixtures: {stale:?}");
}

/// Fixture rendering is a pure function of the circuit: encoding twice
/// (including LZSS compression and CRC stamping) yields identical digests.
#[test]
fn wire_fixture_rendering_is_deterministic() {
    assert_eq!(
        render_wire_fixture("chu133"),
        render_wire_fixture("chu133")
    );
}
