//! Canonical `.g` emission round-trips: `parse(emit(x))` re-emits byte-for-
//! byte, and elaborating the emitted net recovers the source state graph.
//!
//! Covered inputs: the full 25-circuit Table 2 suite (emitted through the
//! state-machine encoding in `nshot_stg::sg_to_g_text`) and every archived
//! `.g` artifact under `tests/corpus/generated/` (fuzz anchors and known
//! violations).

use std::path::PathBuf;

use nshot_sg::StateGraph;
use nshot_stg::{parse_stg, sg_to_g_text};

/// Order-independent equality key for a state graph. Round-tripping
/// through `.g` regroups signal declarations (inputs, then outputs, then
/// internals — relative order within each kind preserved), which permutes
/// the raw code bits; the digest therefore renders codes in that grouped
/// order, the same canonicalization `StateGraph::to_text` applies.
fn digest(sg: &StateGraph) -> String {
    use nshot_sg::SignalKind;
    let ordered: Vec<_> = [SignalKind::Input, SignalKind::Output, SignalKind::Internal]
        .into_iter()
        .flat_map(|kind| {
            sg.signal_ids()
                .filter(move |&s| sg.signal_kind(s) == kind)
                .collect::<Vec<_>>()
        })
        .collect();
    let code_string = |code: u64| -> String {
        ordered
            .iter()
            .map(|sig| {
                if (code >> sig.index()) & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    };
    let mut out = String::new();
    for &s in &ordered {
        out.push_str(&format!("sig {} {:?}\n", sg.signal_name(s), sg.signal_kind(s)));
    }
    out.push_str(&format!("initial {}\n", code_string(sg.code(sg.initial()))));
    let mut edges: Vec<String> = Vec::new();
    for &s in sg.reachable() {
        for &(label, t) in sg.successors(s) {
            edges.push(format!(
                "{} {}{} {}",
                code_string(sg.code(s)),
                label.dir.sign(),
                sg.signal_name(label.signal),
                code_string(sg.code(t))
            ));
        }
    }
    edges.sort_unstable();
    out.push_str(&edges.join("\n"));
    out
}

fn assert_roundtrip(name: &str, sg: &StateGraph) {
    let g = sg_to_g_text(sg);
    let stg = parse_stg(&g).unwrap_or_else(|e| panic!("{name}: emitted text fails to parse: {e}"));
    assert_eq!(stg.to_g_text(), g, "{name}: emission is not a fixpoint");
    let sg2 = stg
        .elaborate()
        .unwrap_or_else(|e| panic!("{name}: emitted net fails to elaborate: {e}"));
    assert_eq!(
        digest(sg),
        digest(&sg2),
        "{name}: elaborated graph differs from the source"
    );
}

#[test]
fn suite_circuits_roundtrip_through_g_emission() {
    for b in nshot_benchmarks::suite() {
        assert_roundtrip(b.name, &b.build());
    }
}

#[test]
fn generated_corpus_is_byte_stable() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("generated");
    if !dir.is_dir() {
        return; // nothing archived yet
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("readable corpus dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "g"))
        .collect();
    files.sort();
    for path in files {
        let name = path.display().to_string();
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        let stg = parse_stg(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Canonical emission is a fixpoint from the very first emit.
        let once = stg.to_g_text();
        let again = parse_stg(&once)
            .unwrap_or_else(|e| panic!("{name}: emitted text fails to parse: {e}"))
            .to_g_text();
        assert_eq!(once, again, "{name}: emission is not a fixpoint");
        // And both parses mean the same thing to the token game.
        let sg = stg.elaborate().unwrap_or_else(|e| panic!("{name}: {e}"));
        let sg2 = parse_stg(&once)
            .unwrap()
            .elaborate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(digest(&sg), digest(&sg2), "{name}: re-parse changed meaning");
    }
}

#[test]
fn generated_specs_roundtrip_through_g_emission() {
    for seed in 0..24u64 {
        let spec = nshot_gen::draw(seed, &nshot_gen::GenConfig::default())
            .unwrap_or_else(|r| panic!("seed {seed} rejected: {r}"));
        assert_roundtrip(&format!("gen{seed}"), &spec.sg);
    }
}
