//! Integration tests of the `assassin` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn assassin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_assassin"))
}

fn write_spec(name: &str, text: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("nshot-cli-{name}-{}.g", std::process::id()));
    std::fs::write(&path, text).expect("temp file writable");
    path
}

const HANDSHAKE_G: &str = "\
.model cli-demo
.inputs rin
.outputs lt aout
.graph
rin+ lt+
lt+ aout+
aout+ rin-
rin- lt-
lt- aout-
aout- rin+
.marking { <aout-,rin+> }
.end
";

#[test]
fn check_reports_analyses() {
    let spec = write_spec("check", HANDSHAKE_G);
    let out = assassin().arg("check").arg(&spec).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CSC:              ok"));
    assert!(stdout.contains("semi-modular:     ok"));
    assert!(stdout.contains("distributive:     yes"));
    assert!(stdout.contains("signal lt"));
}

#[test]
fn synth_writes_verilog_blif_and_dot() {
    let spec = write_spec("synth", HANDSHAKE_G);
    let v = std::env::temp_dir().join(format!("nshot-cli-{}.v", std::process::id()));
    let blif = std::env::temp_dir().join(format!("nshot-cli-{}.blif", std::process::id()));
    let dot = std::env::temp_dir().join(format!("nshot-cli-{}.dot", std::process::id()));
    let out = assassin()
        .args(["synth"])
        .arg(&spec)
        .args(["--verilog"])
        .arg(&v)
        .args(["--blif"])
        .arg(&blif)
        .args(["--dot"])
        .arg(&dot)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let verilog = std::fs::read_to_string(&v).expect("verilog written");
    assert!(verilog.contains("module cli_demo"));
    assert!(verilog.contains("nshot_mhs_ff"));
    let blif_text = std::fs::read_to_string(&blif).expect("blif written");
    assert!(blif_text.starts_with(".model cli_demo"));
    assert!(blif_text.contains(".subckt mhs_ff"));
    let dot_text = std::fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.starts_with("digraph"));
}

#[test]
fn simulate_writes_vcd_and_passes() {
    let spec = write_spec("sim", HANDSHAKE_G);
    let vcd = std::env::temp_dir().join(format!("nshot-cli-{}.vcd", std::process::id()));
    let out = assassin()
        .args(["simulate"])
        .arg(&spec)
        .args(["--trials", "3", "--transitions", "60", "--vcd"])
        .arg(&vcd)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3/3 clean trials"));
    let wave = std::fs::read_to_string(&vcd).expect("vcd written");
    assert!(wave.contains("$timescale 1ps $end"));
    assert!(wave.contains("$var wire 1"));
}

#[test]
fn suite_lists_all_benchmarks() {
    let out = assassin().arg("suite").output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 25);
    assert!(stdout.contains("tsbmsiBRK"));
    assert!(stdout.contains("non-distributive"));
}

#[test]
fn bench_runs_one_circuit() {
    let out = assassin().args(["bench", "pmcm2"]).output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pmcm2"));
    assert!(stdout.contains("ASSASSIN"));
    assert!(stdout.contains("(1)"), "baselines refuse non-distributive input");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = assassin().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = assassin()
        .args(["check", "/nonexistent/spec.g"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}
