//! Cross-method integration: the Table 2 comparison behaves as the paper
//! describes on our reconstructed suite.

use nshot::baselines::{sis, syn, BaselineError};
use nshot::core::{synthesize, SynthesisOptions};
use nshot::netlist::DelayModel;
use nshot::sg::Dir;

#[test]
fn distributive_only_restriction_is_exact() {
    // SIS-like and SYN-like accept exactly the distributive circuits.
    for b in nshot::benchmarks::suite() {
        if b.paper_states > 300 {
            continue;
        }
        let sg = b.build();
        let model = DelayModel::nominal();
        let sis_result = sis(&sg, &model);
        let syn_result = syn(&sg, &model);
        if b.distributive {
            assert!(sis_result.is_ok(), "{}: {:?}", b.name, sis_result.err());
            assert!(syn_result.is_ok(), "{}: {:?}", b.name, syn_result.err());
        } else {
            assert!(
                matches!(sis_result, Err(BaselineError::NonDistributive { .. })),
                "{}",
                b.name
            );
            assert!(
                matches!(syn_result, Err(BaselineError::NonDistributive { .. })),
                "{}",
                b.name
            );
        }
    }
}

#[test]
fn syn_covers_are_monotonous() {
    // The defining constraint: one cube per excitation region, covering the
    // whole region, avoiding every other reachable state outside ER ∪ QR_i.
    for name in ["full", "chu133", "sbuf-send-ctl", "wrdatab"] {
        let sg = nshot::benchmarks::by_name(name).expect("in suite").build();
        let imp = syn(&sg, &DelayModel::nominal()).expect("distributive");
        for (a, set, reset) in &imp.covers {
            let regions = sg.regions_of(*a);
            for dir in [Dir::Rise, Dir::Fall] {
                let cover = if dir == Dir::Rise { set } else { reset };
                let ers: Vec<_> = regions
                    .excitation
                    .iter()
                    .zip(&regions.quiescent)
                    .filter(|(e, _)| e.instance.dir == dir)
                    .collect();
                assert_eq!(cover.num_cubes(), ers.len(), "{name}: one cube per ER");
                for ((er, qr), cube) in ers.iter().zip(cover.iter()) {
                    // Covers its ER…
                    for s in &er.states {
                        assert!(cube.contains_minterm(sg.code(s)));
                    }
                    // …and no reachable state outside ER ∪ QR_i.
                    let allowed: std::collections::HashSet<u64> = er
                        .states
                        .iter()
                        .chain(qr.states.iter())
                        .map(|s| sg.code(s))
                        .collect();
                    for &s in sg.reachable() {
                        let code = sg.code(s);
                        if cube.contains_minterm(code) {
                            assert!(allowed.contains(&code), "{name}: monotonicity violated");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn sis_covers_implement_next_state_functions() {
    for name in ["full", "chu172", "vbe5b"] {
        let sg = nshot::benchmarks::by_name(name).expect("in suite").build();
        let imp = sis(&sg, &DelayModel::nominal()).expect("distributive");
        for (a, cover) in &imp.covers {
            for &s in sg.reachable() {
                let expect = sg.value(s, *a) != sg.is_excited(s, *a);
                assert_eq!(
                    cover.contains_minterm(sg.code(s)),
                    expect,
                    "{name}/{}",
                    sg.signal_name(*a)
                );
            }
        }
    }
}

#[test]
fn sequential_circuits_favor_sis_concurrent_favor_nshot() {
    // The Table 2 delay shape: on purely sequential controllers SIS (no
    // storage element) is fastest; on concurrent ones its hazard padding
    // makes it slower than the N-SHOT circuit.
    let model = DelayModel::nominal();
    let seq = nshot::benchmarks::by_name("chu172").expect("in suite").build();
    let conc = nshot::benchmarks::by_name("chu133").expect("in suite").build();
    let sis_seq = sis(&seq, &model).expect("ok");
    let nshot_seq = synthesize(&seq, &SynthesisOptions::default()).expect("ok");
    assert!(sis_seq.delay_ns < nshot_seq.delay_ns);
    let sis_conc = sis(&conc, &model).expect("ok");
    let nshot_conc = synthesize(&conc, &SynthesisOptions::default()).expect("ok");
    assert!(sis_conc.delay_ns > nshot_conc.delay_ns);
}

#[test]
fn ack_hardware_shows_up_on_multi_region_outputs() {
    // Shared outputs across choice branches have several excitation regions;
    // the SYN flow pays acknowledgement hardware there and ends up larger
    // than the N-SHOT circuit (the pe-send-ifc / sbuf-send-ctl shape).
    let sg = nshot::benchmarks::by_name("sbuf-send-ctl").expect("in suite").build();
    let syn_imp = syn(&sg, &DelayModel::nominal()).expect("distributive");
    let nshot_imp = synthesize(&sg, &SynthesisOptions::default()).expect("ok");
    assert!(
        syn_imp.area > nshot_imp.area,
        "syn {} vs nshot {}",
        syn_imp.area,
        nshot_imp.area
    );
}

#[test]
fn qmodule_pays_the_section2_premium() {
    use nshot::baselines::qmodule;
    // The §II argument, as an invariant over the suite: the Q-module
    // implementation is always larger and slower than the N-SHOT one.
    for b in nshot::benchmarks::suite() {
        if b.paper_states > 300 {
            continue;
        }
        let sg = b.build();
        let q = qmodule(&sg, &DelayModel::nominal()).expect("no distributivity restriction");
        let n = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
        assert!(q.area > n.area, "{}: {} <= {}", b.name, q.area, n.area);
        assert!(q.delay_ns > n.delay_ns, "{}", b.name);
        // Q-flop count = inputs + state signals, as §II says.
        assert_eq!(
            q.qflops,
            sg.input_signals().count() + sg.non_input_signals().count(),
            "{}",
            b.name
        );
    }
}

#[test]
fn qmodule_accepts_what_sis_and_syn_refuse() {
    use nshot::baselines::qmodule;
    let sg = nshot::benchmarks::by_name("pmcm1").expect("in suite").build();
    assert!(sis(&sg, &DelayModel::nominal()).is_err());
    assert!(syn(&sg, &DelayModel::nominal()).is_err());
    assert!(qmodule(&sg, &DelayModel::nominal()).is_ok());
}

#[test]
fn nshot_fanout_assumption_report() {
    // The architecture's delay assumption: primary inputs may fan out to
    // several product terms (they need negligible skew); the report makes
    // the assumption auditable.
    let sg = nshot::benchmarks::by_name("chu133").expect("in suite").build();
    let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
    let report = imp.netlist.multi_fanout_report();
    assert!(
        report.iter().any(|&(_, _, is_input)| is_input),
        "some primary input feeds multiple gates"
    );
    // Every flip-flop output also fans out (feedback + observability).
    assert!(report.iter().any(|&(_, _, is_input)| !is_input));
}
