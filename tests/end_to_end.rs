//! End-to-end integration: STG text → state graph → N-SHOT synthesis →
//! gate-level conformance, across specification styles.

use nshot::core::{synthesize, verify_covers, SynthesisOptions};
use nshot::sim::{check_conformance, monte_carlo, ConformanceConfig};
use nshot::stg::parse_stg;

#[test]
fn stg_to_validated_circuit() {
    let stg = parse_stg(
        ".model latch-ctl\n.inputs rin\n.outputs lt aout\n.graph\nrin+ lt+\nlt+ aout+\naout+ rin-\nrin- lt-\nlt- aout-\naout- rin+\n.marking { <aout-,rin+> }\n.end",
    )
    .expect("parses");
    let sg = stg.elaborate().expect("elaborates");
    assert_eq!(sg.num_states(), 6);
    let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
    for s in &imp.signals {
        verify_covers(&sg, s.signal, &s.set_cover, &s.reset_cover).expect("covers verify");
    }
    let report = check_conformance(&sg, &imp, &ConformanceConfig::default());
    assert!(report.is_hazard_free(), "{:?}", report.violations);
}

#[test]
fn concurrent_stg_with_choice() {
    // Free input choice with per-branch output occurrences.
    let stg = parse_stg(
        ".model choice\n.inputs a b\n.outputs c\n.graph\np0 a+ b+\na+ c+\nb+ c+/2\nc+ a-\nc+/2 b-\na- c-\nb- c-/2\nc- p0\nc-/2 p0\n.marking { p0 }\n.end",
    )
    .expect("parses");
    let sg = stg.elaborate().expect("elaborates");
    let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
    let summary = monte_carlo(&sg, &imp, &ConformanceConfig::default(), 10);
    assert!(summary.all_clean(), "{:?}", summary.first_failure);
}

#[test]
fn text_format_round_trip_preserves_synthesis() {
    let sg = nshot::benchmarks::by_name("full").expect("in suite").build();
    let text = sg.to_text();
    let back = nshot::sg::parse_sg(&text).expect("round-trips");
    let a = synthesize(&sg, &SynthesisOptions::default()).expect("original synthesizes");
    let b = synthesize(&back, &SynthesisOptions::default()).expect("round-trip synthesizes");
    assert_eq!(a.area, b.area);
    assert_eq!(a.signals.len(), b.signals.len());
}

#[test]
fn exact_and_heuristic_flows_both_validate() {
    let sg = nshot::benchmarks::by_name("chu133").expect("in suite").build();
    for options in [SynthesisOptions::default(), SynthesisOptions::exact()] {
        let imp = synthesize(&sg, &options).expect("synthesizes");
        let report = check_conformance(&sg, &imp, &ConformanceConfig::default());
        assert!(report.is_hazard_free(), "{:?}", report.violations);
    }
}

#[test]
fn sharing_ablation_preserves_correctness() {
    let sg = nshot::benchmarks::or_causal("abl", "", 2);
    for options in [
        SynthesisOptions::default(),
        SynthesisOptions::without_sharing(),
    ] {
        let imp = synthesize(&sg, &options).expect("synthesizes");
        let report = check_conformance(&sg, &imp, &ConformanceConfig::default());
        assert!(report.is_hazard_free(), "{:?}", report.violations);
    }
}
