//! Region-structure invariants over the whole benchmark suite — the
//! Section III objects behave per their definitions on every circuit, not
//! just on the hand-built fixtures.

use nshot::sg::{Dir, StateGraph};
use std::collections::BTreeSet;

fn analysed() -> Vec<StateGraph> {
    nshot::benchmarks::suite()
        .iter()
        .filter(|b| b.paper_states <= 300)
        .map(nshot::benchmarks::Benchmark::build)
        .collect()
}

#[test]
fn excitation_regions_partition_excited_states() {
    for sg in analysed() {
        for a in sg.non_input_signals() {
            let regions = sg.regions_of(a);
            let mut seen: BTreeSet<_> = BTreeSet::new();
            for er in &regions.excitation {
                for s in &er.states {
                    assert!(sg.is_excited(s, a), "{}: ER state not excited", sg.name());
                    assert!(
                        seen.insert(s),
                        "{}: state in two excitation regions",
                        sg.name()
                    );
                    // All states of one ER hold the same (pre-transition)
                    // value.
                    assert_eq!(
                        sg.value(s, a),
                        !er.instance.dir.target_value(),
                        "{}",
                        sg.name()
                    );
                }
            }
            // Every excited state is in some ER.
            for &s in sg.reachable() {
                if sg.is_excited(s, a) {
                    assert!(seen.contains(&s), "{}: excited state missed", sg.name());
                }
            }
        }
    }
}

#[test]
fn quiescent_regions_are_stable_at_the_new_value() {
    for sg in analysed() {
        for a in sg.non_input_signals() {
            let regions = sg.regions_of(a);
            for qr in &regions.quiescent {
                for s in &qr.states {
                    assert!(!sg.is_excited(s, a), "{}: QR state excited", sg.name());
                    assert_eq!(
                        sg.value(s, a),
                        qr.instance.dir.target_value(),
                        "{}: QR value mismatch",
                        sg.name()
                    );
                }
            }
        }
    }
}

#[test]
fn region_modes_partition_reachable_states() {
    use nshot::sg::RegionMode;
    for sg in analysed() {
        for a in sg.non_input_signals() {
            let mut counts = [0usize; 4];
            for &s in sg.reachable() {
                let i = match sg.region_mode(s, a) {
                    RegionMode::ExcitedUp => 0,
                    RegionMode::StableHigh => 1,
                    RegionMode::ExcitedDown => 2,
                    RegionMode::StableLow => 3,
                };
                counts[i] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), sg.reachable().len());
            // Alternation: a signal that rises somewhere must fall somewhere.
            assert_eq!(counts[0] > 0, counts[2] > 0, "{}", sg.name());
        }
    }
}

#[test]
fn rising_and_falling_regions_alternate() {
    // Firing the transition of an ER lands in states whose next excitation
    // of the signal (if any) has the opposite direction.
    for sg in analysed() {
        for a in sg.non_input_signals() {
            let regions = sg.regions_of(a);
            for er in &regions.excitation {
                for s in &er.states {
                    let (dir, dst) = sg.fire_signal(s, a).expect("ER states fire *a");
                    assert_eq!(dir, er.instance.dir);
                    if sg.is_excited(dst, a) {
                        let next_dir = sg.fire_signal(dst, a).expect("excited").0;
                        assert_eq!(next_dir, dir.opposite(), "{}", sg.name());
                    }
                }
            }
        }
    }
}

#[test]
fn trigger_regions_count_matches_single_traversal_flag() {
    for sg in analysed() {
        let all_singleton = sg.non_input_signals().all(|a| {
            sg.regions_of(a)
                .triggers
                .iter()
                .all(|t| t.states.len() == 1)
        });
        assert_eq!(all_singleton, sg.is_single_traversal(), "{}", sg.name());
    }
}

#[test]
fn dot_highlighting_renders_for_every_circuit() {
    for sg in analysed().into_iter().take(6) {
        let a = sg.non_input_signals().next().expect("has outputs");
        let dot = sg.to_dot_highlighting(Some(a));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("penwidth=3"), "{}: trigger states marked", sg.name());
    }
    let _ = Dir::Rise; // keep the import meaningful for rustc
}
