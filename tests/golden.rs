//! Golden-file regression suite over the Table 2 benchmarks.
//!
//! For every circuit the default synthesis flow is run and a small artifact
//! is rendered: an FNV-1a hash of the canonical BLIF netlist, the area and
//! critical-path numbers, and the per-network cube/literal totals. The
//! artifacts live in `tests/golden/<circuit>.txt` and pin the exact output
//! of the whole pipeline — parser, region derivation, minimizer, trigger
//! repair, assembly — so an accidental change anywhere shows up as a
//! one-line diff naming the circuit and the drifted quantity.
//!
//! To re-bless after an *intentional* change:
//!
//! ```text
//! NSHOT_BLESS=1 cargo test --test golden
//! ```
//!
//! and review the resulting `tests/golden/` diff like any other code.

use std::fmt::Write as _;
use std::path::PathBuf;

use nshot::core::{synthesize, SynthesisOptions};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// FNV-1a, the same stable hash used for proptest seeds — no dependency on
/// `DefaultHasher`, whose output may change across Rust releases.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn render_artifact(name: &str) -> String {
    let bench = nshot::benchmarks::by_name(name).expect("in suite");
    let sg = bench.build();
    let imp = synthesize(&sg, &SynthesisOptions::default())
        .unwrap_or_else(|e| panic!("{name}: synthesis failed: {e}"));

    let (mut set_cubes, mut set_lits, mut reset_cubes, mut reset_lits) = (0, 0, 0, 0);
    for s in &imp.signals {
        set_cubes += s.set_cover.num_cubes();
        set_lits += s.set_cover.literal_count();
        reset_cubes += s.reset_cover.num_cubes();
        reset_lits += s.reset_cover.literal_count();
    }

    let mut out = String::new();
    writeln!(out, "circuit: {name}").unwrap();
    writeln!(out, "spec_states: {}", imp.num_states).unwrap();
    writeln!(out, "netlist_fnv1a: {:#018x}", fnv1a(imp.netlist.to_blif().as_bytes())).unwrap();
    writeln!(out, "area: {}", imp.area).unwrap();
    writeln!(out, "delay_ns: {:.3}", imp.delay_ns).unwrap();
    writeln!(out, "set_cubes: {set_cubes}").unwrap();
    writeln!(out, "set_literals: {set_lits}").unwrap();
    writeln!(out, "reset_cubes: {reset_cubes}").unwrap();
    writeln!(out, "reset_literals: {reset_lits}").unwrap();
    writeln!(
        out,
        "delay_compensation_free: {}",
        imp.delay_compensation_free()
    )
    .unwrap();
    out
}

#[test]
fn golden_artifacts_match() {
    let bless = std::env::var("NSHOT_BLESS").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }

    let mut drifted = Vec::new();
    let mut expected_files = Vec::new();
    for bench in nshot::benchmarks::suite() {
        let actual = render_artifact(bench.name);
        let path = dir.join(format!("{}.txt", bench.name));
        expected_files.push(format!("{}.txt", bench.name));
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == actual => {}
            Ok(golden) => {
                if bless {
                    std::fs::write(&path, &actual).unwrap();
                } else {
                    let diff: Vec<String> = golden
                        .lines()
                        .zip(actual.lines())
                        .filter(|(g, a)| g != a)
                        .map(|(g, a)| format!("  - {g}\n  + {a}"))
                        .collect();
                    drifted.push(format!("{}:\n{}", bench.name, diff.join("\n")));
                }
            }
            Err(_) => {
                if bless {
                    std::fs::write(&path, &actual).unwrap();
                } else {
                    drifted.push(format!("{}: golden file missing", bench.name));
                }
            }
        }
    }
    assert!(
        drifted.is_empty(),
        "{} golden artifact(s) drifted (NSHOT_BLESS=1 to re-bless):\n{}",
        drifted.len(),
        drifted.join("\n")
    );

    // Stale artifacts are drift too: a renamed circuit must not leave its
    // old golden file silently green. Subdirectories (the wire-encoding
    // fixtures under `wire/`) run their own stale check in
    // `tests/wire_differential.rs`.
    let mut stale = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("tests/golden/ must exist") {
        let entry = entry.unwrap();
        if entry.path().is_dir() {
            continue;
        }
        let file = entry.file_name().into_string().unwrap();
        if !expected_files.iter().any(|e| e == &file) {
            stale.push(file);
        }
    }
    assert!(stale.is_empty(), "stale golden files: {stale:?}");
}

/// The hash in the artifact must be a function of the netlist alone —
/// synthesizing twice yields byte-identical BLIF (determinism guard at the
/// export boundary, complementing the model checker's certificate check).
#[test]
fn golden_rendering_is_deterministic() {
    for name in ["chu133", "hybridf", "vbe10b"] {
        assert_eq!(render_artifact(name), render_artifact(name), "{name}");
    }
}
