//! Byte-identity of synthesis artifacts through the persistent store.
//!
//! Every circuit in the benchmark suite goes through the full persistence
//! cycle — synthesize, store, close, reopen, read — and must come back
//! byte-identical to what was written *and* byte-identical to a direct
//! `synthesize` call. This is the property that makes the store safe to
//! serve from: a warm-started server answers with exactly the bytes a
//! cold compilation would have produced, or not at all.

use nshot::server::{json, load_spec, process_synth, Deadline, Method, OutputFormat, SynthRequest};
use nshot::store::{Store, StoreConfig};
use nshot_core::{synthesize, Minimizer, SynthesisOptions};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nshot-roundtrip-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request_for(spec: &str) -> SynthRequest {
    SynthRequest {
        spec: spec.to_owned(),
        method: Method::Nshot,
        minimizer: Minimizer::Heuristic,
        trials: 0,
        format: OutputFormat::Blif,
        share: false,
    }
}

#[test]
fn every_suite_circuit_round_trips_byte_identically() {
    let dir = temp_dir("suite");
    let suite = nshot::benchmarks::suite();
    assert!(!suite.is_empty());

    // Synthesize every circuit through the service path and persist the
    // deterministic response fields — exactly what `nshot-serve --store`
    // persists.
    let mut artifacts: Vec<(String, String, String)> = Vec::new(); // (key, fields, name)
    {
        let mut store = Store::open(StoreConfig::new(&dir)).expect("open");
        for b in &suite {
            let spec = b.build().to_text();
            let request = request_for(&spec);
            let response = process_synth(&request, &Deadline::unlimited());
            assert_eq!(response.code, 200, "{} must synthesize", b.name);
            let fields = response.deterministic_fields();
            let key = request.cache_key();
            store.put(&key, fields.as_bytes()).expect("put");
            artifacts.push((key, fields, b.name.to_owned()));
        }
        store.flush().expect("flush");
    }

    // Reopen: every record must be recovered and read back byte-identical
    // to what was written.
    let mut store = Store::open(StoreConfig::new(&dir)).expect("reopen");
    assert_eq!(
        store.stats().recovered_records as usize,
        artifacts.len(),
        "every artifact survives the restart"
    );
    assert_eq!(store.stats().dropped_records, 0);
    for (key, fields, name) in &artifacts {
        let value = store.get(key).unwrap_or_else(|| panic!("{name}: lost artifact"));
        assert_eq!(
            value.as_slice(),
            fields.as_bytes(),
            "{name}: stored artifact differs from the response written"
        );
    }

    // And byte-identical to direct library calls: the BLIF inside each
    // stored response equals `synthesize` on the same specification text the
    // service parsed. (Parsing the text, not re-building the benchmark: the
    // text round-trip can renumber signals, which renames netlist nodes.)
    for (b, (key, _, name)) in suite.iter().zip(&artifacts) {
        let value = store.get(key).expect("still present");
        let fields = String::from_utf8(value).expect("utf-8 artifact");
        let response =
            json::parse(&format!("{{{fields}}}")).expect("stored fields parse as json");
        let stored_blif = response
            .get("blif")
            .and_then(json::Json::as_str)
            .unwrap_or_else(|| panic!("{name}: stored response has no blif"))
            .to_owned();
        let sg = load_spec(&b.build().to_text()).expect("spec text parses");
        let imp = synthesize(&sg, &SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{name}: direct synthesis failed: {e}"));
        assert_eq!(
            stored_blif,
            imp.netlist.to_blif(),
            "{name}: stored netlist differs from a direct synthesize call"
        );
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rewriting_the_same_artifacts_is_stable() {
    // Store idempotence: writing the same suite twice (the incremental
    // `nshot-batch --force` path) leaves the same live records and the
    // reread bytes unchanged.
    let dir = temp_dir("stable");
    let b = nshot::benchmarks::by_name("chu133").expect("in suite");
    let spec = b.build().to_text();
    let request = request_for(&spec);
    let fields = process_synth(&request, &Deadline::unlimited()).deterministic_fields();
    let key = request.cache_key();

    {
        let mut store = Store::open(StoreConfig::new(&dir)).expect("open");
        store.put(&key, fields.as_bytes()).expect("first put");
        store.put(&key, fields.as_bytes()).expect("second put");
        assert_eq!(store.len(), 1, "same key, one live record");
    }
    let mut store = Store::open(StoreConfig::new(&dir)).expect("reopen");
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(&key).as_deref(), Some(fields.as_bytes()));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
