//! Fault-injection tests for `nshot-store` crash recovery.
//!
//! Three corruption scenarios a real deployment will eventually hit — a
//! crash mid-append (torn tail), silent bit rot (payload flip) and a lost
//! file (deleted newest segment) — each injected byte-surgically into a
//! store written by the public API. `Store::open` must recover every
//! surviving record, never panic, never serve a corrupt artifact, and
//! account for the damage in both its own stats and the process-global
//! `nshot_store_recovered_records_total` / `nshot_store_dropped_records_total`
//! counter pair.

use nshot::store::{
    frame_len, FsyncPolicy, Store, StoreConfig, HEADER_LEN, RECORD_HEADER_LEN,
};
use nshot_obs::Registry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The global-registry counters are process-wide; serialize the tests that
/// assert on their deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "nshot-recovery-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> StoreConfig {
    StoreConfig {
        // `Always` so every record is on disk before we corrupt the files.
        fsync: FsyncPolicy::Always,
        ..StoreConfig::new(dir)
    }
}

/// Write `keys` (each with a distinctive 64-byte payload) and close.
fn seed(dir: &Path, keys: &[&str]) {
    let mut store = Store::open(config(dir)).expect("seed open");
    for key in keys {
        store.put(key, &payload(key)).expect("seed put");
    }
}

fn payload(key: &str) -> Vec<u8> {
    key.bytes().cycle().take(64).collect()
}

/// The single data segment a fresh seed run leaves behind.
fn only_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-"))
        })
        .collect();
    assert_eq!(segs.len(), 1, "seed should leave exactly one segment");
    segs.pop().expect("one segment")
}

fn global(name: &str) -> u64 {
    Registry::global().counter_value(name)
}

/// Every key must round-trip; every corrupted key must miss — never panic,
/// never return damaged bytes.
fn assert_survivors(store: &mut Store, alive: &[&str], dead: &[&str]) {
    for key in alive {
        assert_eq!(
            store.get(key).as_deref(),
            Some(payload(key).as_slice()),
            "surviving record '{key}' must read back intact"
        );
    }
    for key in dead {
        assert_eq!(store.get(key), None, "'{key}' was corrupted and must miss");
    }
}

#[test]
fn torn_tail_is_truncated_and_survivors_recovered() {
    let _guard = lock();
    let dir = temp_dir("torn");
    seed(&dir, &["alpha", "beta", "gamma"]);

    // Chop the last record's trailer short: a crash mid-append.
    let seg = only_segment(&dir);
    let len = std::fs::metadata(&seg).expect("metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open segment")
        .set_len(len - 7)
        .expect("truncate");

    let recovered_before = global("nshot_store_recovered_records_total");
    let dropped_before = global("nshot_store_dropped_records_total");
    let mut store = Store::open(config(&dir)).expect("recovery open");

    assert_eq!(store.stats().recovered_records, 2);
    assert_eq!(store.stats().dropped_records, 1);
    assert_eq!(store.len(), 2);
    assert_survivors(&mut store, &["alpha", "beta"], &["gamma"]);
    assert_eq!(global("nshot_store_recovered_records_total"), recovered_before + 2);
    assert_eq!(global("nshot_store_dropped_records_total"), dropped_before + 1);

    // The torn bytes are gone from disk: the segment now ends exactly at
    // the last whole record.
    let expected = HEADER_LEN + frame_len("alpha".len() as u32, 64) + frame_len("beta".len() as u32, 64);
    assert_eq!(std::fs::metadata(&seg).expect("metadata").len(), expected);

    // The recovered store is fully writable again.
    store.put("gamma", &payload("gamma")).expect("re-put");
    assert_eq!(store.get("gamma").as_deref(), Some(payload("gamma").as_slice()));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_payload_byte_drops_only_that_record() {
    let _guard = lock();
    let dir = temp_dir("flip");
    seed(&dir, &["alpha", "beta", "gamma"]);

    // Flip one byte inside the *middle* record's value: bit rot that the
    // length framing alone would never notice.
    let seg = only_segment(&dir);
    let mut bytes = std::fs::read(&seg).expect("read segment");
    let offset =
        (HEADER_LEN + frame_len(5, 64)) as usize + RECORD_HEADER_LEN + "beta".len() + 10;
    bytes[offset] ^= 0x40;
    std::fs::write(&seg, &bytes).expect("write corrupted segment");

    let recovered_before = global("nshot_store_recovered_records_total");
    let dropped_before = global("nshot_store_dropped_records_total");
    let mut store = Store::open(config(&dir)).expect("recovery open");

    // The scan resyncs at the next frame: only "beta" is lost.
    assert_eq!(store.stats().recovered_records, 2);
    assert_eq!(store.stats().dropped_records, 1);
    assert_survivors(&mut store, &["alpha", "gamma"], &["beta"]);
    assert_eq!(global("nshot_store_recovered_records_total"), recovered_before + 2);
    assert_eq!(global("nshot_store_dropped_records_total"), dropped_before + 1);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deleted_newest_segment_loses_only_its_records() {
    let _guard = lock();
    let dir = temp_dir("missing");
    // Two generations on disk: "old" records in segment 1, then a second
    // session adds "new" records in segment 2.
    seed(&dir, &["old-a", "old-b"]);
    {
        let mut store = Store::open(config(&dir)).expect("second session");
        store.put("new-a", &payload("new-a")).expect("put");
        store.put("new-b", &payload("new-b")).expect("put");
        assert_eq!(store.len(), 4);
    }

    // Lose the newest segment file wholesale.
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    segs.sort();
    assert!(segs.len() >= 2, "expected at least two segments");
    std::fs::remove_file(segs.last().expect("newest")).expect("delete newest");

    let mut store = Store::open(config(&dir)).expect("recovery open");
    // The index only ever references files that exist: the old generation
    // is fully recovered, the lost one simply contributes nothing.
    assert_eq!(store.stats().recovered_records, 2);
    assert_eq!(store.len(), 2);
    assert_survivors(&mut store, &["old-a", "old-b"], &["new-a", "new-b"]);

    // Lost keys are recompilable: a fresh put round-trips.
    store.put("new-a", &payload("new-a")).expect("re-put");
    assert_eq!(store.get("new-a").as_deref(), Some(payload("new-a").as_slice()));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_three_faults_at_once_still_recover() {
    let _guard = lock();
    // The faults compose: one store with a bit-flipped record in an old
    // segment, a deleted middle segment, and a torn tail on the newest.
    let dir = temp_dir("compound");
    seed(&dir, &["s1-a", "s1-b"]);
    {
        let mut store = Store::open(config(&dir)).expect("session 2");
        store.put("s2-a", &payload("s2-a")).expect("put");
    }
    {
        let mut store = Store::open(config(&dir)).expect("session 3");
        store.put("s3-a", &payload("s3-a")).expect("put");
        store.put("s3-b", &payload("s3-b")).expect("put");
    }

    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 3);
    // Fault 1: flip a byte in segment 1's first record ("s1-a").
    let mut bytes = std::fs::read(&segs[0]).expect("read");
    let off = HEADER_LEN as usize + RECORD_HEADER_LEN + "s1-a".len() + 3;
    bytes[off] ^= 0x01;
    std::fs::write(&segs[0], &bytes).expect("write");
    // Fault 2: delete segment 2 ("s2-a").
    std::fs::remove_file(&segs[1]).expect("delete");
    // Fault 3: tear segment 3's tail ("s3-b").
    let len = std::fs::metadata(&segs[2]).expect("meta").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&segs[2])
        .expect("open")
        .set_len(len - 3)
        .expect("truncate");

    let mut store = Store::open(config(&dir)).expect("compound recovery");
    assert_eq!(store.stats().recovered_records, 2, "s1-b and s3-a survive");
    assert_eq!(store.stats().dropped_records, 2, "s1-a flipped, s3-b torn");
    assert_survivors(
        &mut store,
        &["s1-b", "s3-a"],
        &["s1-a", "s2-a", "s3-b"],
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
