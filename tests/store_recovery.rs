//! Fault-injection tests for `nshot-store` crash recovery.
//!
//! Three corruption scenarios a real deployment will eventually hit — a
//! crash mid-append (torn tail), silent bit rot (payload flip) and a lost
//! file (deleted newest segment) — each injected byte-surgically into a
//! store written by the public API. `Store::open` must recover every
//! surviving record, never panic, never serve a corrupt artifact, and
//! account for the damage in both its own stats and the process-global
//! `nshot_store_recovered_records_total` / `nshot_store_dropped_records_total`
//! counter pair.

use nshot::store::{
    encode_header_v1, encode_record_v1, encoded_len, FsyncPolicy, Store, StoreConfig,
    FORMAT_VERSION, HEADER_LEN, RECORD_HEADER_LEN,
};
use nshot_obs::Registry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The global-registry counters are process-wide; serialize the tests that
/// assert on their deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "nshot-recovery-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> StoreConfig {
    StoreConfig {
        // `Always` so every record is on disk before we corrupt the files.
        fsync: FsyncPolicy::Always,
        ..StoreConfig::new(dir)
    }
}

/// Write `keys` (each with a distinctive 64-byte payload) and close.
fn seed(dir: &Path, keys: &[&str]) {
    let mut store = Store::open(config(dir)).expect("seed open");
    for key in keys {
        store.put(key, &payload(key)).expect("seed put");
    }
}

fn payload(key: &str) -> Vec<u8> {
    key.bytes().cycle().take(64).collect()
}

/// The single data segment a fresh seed run leaves behind.
fn only_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-"))
        })
        .collect();
    assert_eq!(segs.len(), 1, "seed should leave exactly one segment");
    segs.pop().expect("one segment")
}

fn global(name: &str) -> u64 {
    Registry::global().counter_value(name)
}

/// Every key must round-trip; every corrupted key must miss — never panic,
/// never return damaged bytes.
fn assert_survivors(store: &mut Store, alive: &[&str], dead: &[&str]) {
    for key in alive {
        assert_eq!(
            store.get(key).as_deref(),
            Some(payload(key).as_slice()),
            "surviving record '{key}' must read back intact"
        );
    }
    for key in dead {
        assert_eq!(store.get(key), None, "'{key}' was corrupted and must miss");
    }
}

#[test]
fn torn_tail_is_truncated_and_survivors_recovered() {
    let _guard = lock();
    let dir = temp_dir("torn");
    seed(&dir, &["alpha", "beta", "gamma"]);

    // Chop the last record's trailer short: a crash mid-append.
    let seg = only_segment(&dir);
    let len = std::fs::metadata(&seg).expect("metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open segment")
        .set_len(len - 7)
        .expect("truncate");

    let recovered_before = global("nshot_store_recovered_records_total");
    let dropped_before = global("nshot_store_dropped_records_total");
    let mut store = Store::open(config(&dir)).expect("recovery open");

    assert_eq!(store.stats().recovered_records, 2);
    assert_eq!(store.stats().dropped_records, 1);
    assert_eq!(store.len(), 2);
    assert_survivors(&mut store, &["alpha", "beta"], &["gamma"]);
    assert_eq!(global("nshot_store_recovered_records_total"), recovered_before + 2);
    assert_eq!(global("nshot_store_dropped_records_total"), dropped_before + 1);

    // The torn bytes are gone from disk: the segment now ends exactly at
    // the last whole record (encoded_len accounts for part compression).
    let expected = HEADER_LEN
        + encoded_len(b"alpha", &payload("alpha"))
        + encoded_len(b"beta", &payload("beta"));
    assert_eq!(std::fs::metadata(&seg).expect("metadata").len(), expected);

    // The recovered store is fully writable again.
    store.put("gamma", &payload("gamma")).expect("re-put");
    assert_eq!(store.get("gamma").as_deref(), Some(payload("gamma").as_slice()));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_payload_byte_drops_only_that_record() {
    let _guard = lock();
    let dir = temp_dir("flip");
    seed(&dir, &["alpha", "beta", "gamma"]);

    // Flip one byte inside the *middle* record's value: bit rot that the
    // length framing alone would never notice.
    let seg = only_segment(&dir);
    let mut bytes = std::fs::read(&seg).expect("read segment");
    let rec_alpha = encoded_len(b"alpha", &payload("alpha"));
    let offset = (HEADER_LEN + rec_alpha) as usize + RECORD_HEADER_LEN + "beta".len() + 3;
    bytes[offset] ^= 0x40;
    std::fs::write(&seg, &bytes).expect("write corrupted segment");

    let recovered_before = global("nshot_store_recovered_records_total");
    let dropped_before = global("nshot_store_dropped_records_total");
    let mut store = Store::open(config(&dir)).expect("recovery open");

    // The scan resyncs at the next frame: only "beta" is lost.
    assert_eq!(store.stats().recovered_records, 2);
    assert_eq!(store.stats().dropped_records, 1);
    assert_survivors(&mut store, &["alpha", "gamma"], &["beta"]);
    assert_eq!(global("nshot_store_recovered_records_total"), recovered_before + 2);
    assert_eq!(global("nshot_store_dropped_records_total"), dropped_before + 1);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deleted_newest_segment_loses_only_its_records() {
    let _guard = lock();
    let dir = temp_dir("missing");
    // Two generations on disk: "old" records in segment 1, then a second
    // session adds "new" records in segment 2.
    seed(&dir, &["old-a", "old-b"]);
    {
        let mut store = Store::open(config(&dir)).expect("second session");
        store.put("new-a", &payload("new-a")).expect("put");
        store.put("new-b", &payload("new-b")).expect("put");
        assert_eq!(store.len(), 4);
    }

    // Lose the newest segment file wholesale.
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    segs.sort();
    assert!(segs.len() >= 2, "expected at least two segments");
    std::fs::remove_file(segs.last().expect("newest")).expect("delete newest");

    let mut store = Store::open(config(&dir)).expect("recovery open");
    // The index only ever references files that exist: the old generation
    // is fully recovered, the lost one simply contributes nothing.
    assert_eq!(store.stats().recovered_records, 2);
    assert_eq!(store.len(), 2);
    assert_survivors(&mut store, &["old-a", "old-b"], &["new-a", "new-b"]);

    // Lost keys are recompilable: a fresh put round-trips.
    store.put("new-a", &payload("new-a")).expect("re-put");
    assert_eq!(store.get("new-a").as_deref(), Some(payload("new-a").as_slice()));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_three_faults_at_once_still_recover() {
    let _guard = lock();
    // The faults compose: one store with a bit-flipped record in an old
    // segment, a deleted middle segment, and a torn tail on the newest.
    let dir = temp_dir("compound");
    seed(&dir, &["s1-a", "s1-b"]);
    {
        let mut store = Store::open(config(&dir)).expect("session 2");
        store.put("s2-a", &payload("s2-a")).expect("put");
    }
    {
        let mut store = Store::open(config(&dir)).expect("session 3");
        store.put("s3-a", &payload("s3-a")).expect("put");
        store.put("s3-b", &payload("s3-b")).expect("put");
    }

    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 3);
    // Fault 1: flip a byte in segment 1's first record ("s1-a").
    let mut bytes = std::fs::read(&segs[0]).expect("read");
    let off = HEADER_LEN as usize + RECORD_HEADER_LEN + "s1-a".len() + 3;
    bytes[off] ^= 0x01;
    std::fs::write(&segs[0], &bytes).expect("write");
    // Fault 2: delete segment 2 ("s2-a").
    std::fs::remove_file(&segs[1]).expect("delete");
    // Fault 3: tear segment 3's tail ("s3-b").
    let len = std::fs::metadata(&segs[2]).expect("meta").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&segs[2])
        .expect("open")
        .set_len(len - 3)
        .expect("truncate");

    let mut store = Store::open(config(&dir)).expect("compound recovery");
    assert_eq!(store.stats().recovered_records, 2, "s1-b and s3-a survive");
    assert_eq!(store.stats().dropped_records, 2, "s1-a flipped, s3-b torn");
    assert_survivors(
        &mut store,
        &["s1-b", "s3-a"],
        &["s1-a", "s2-a", "s3-b"],
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The wire-format migration path: a store directory holding framing-v1
/// segments with JSON-era payloads (value version 1) opened by a binary-era
/// store (value version 2, legacy `[1]`). Reads must be byte-identical
/// across versions, recovery counters exact, and compaction must rewrite
/// every survivor in the binary v2 framing.
#[test]
fn mixed_legacy_and_binary_records_read_back_and_compact_to_binary() {
    let _guard = lock();
    let dir = temp_dir("migrate");
    std::fs::create_dir_all(&dir).expect("mkdir");
    // Fabricate what a pre-upgrade deployment leaves on disk: a framing-v1
    // segment of raw (uncompressed) JSON records at payload version 1.
    let json_a: &[u8] = br#"{"code":200,"status":"ok","blif":".names a b\n1 1\n"}"#;
    let json_b: &[u8] = br#"{"code":200,"status":"ok","blif":".names c d\n0 1\n"}"#;
    let mut seg1 = Vec::new();
    seg1.extend_from_slice(&encode_header_v1(1));
    seg1.extend_from_slice(&encode_record_v1(b"legacy-a", json_a, 1));
    seg1.extend_from_slice(&encode_record_v1(b"legacy-b", json_b, 1));
    std::fs::write(dir.join("seg-00000001.log"), &seg1).expect("write v1 segment");

    let recovered_before = global("nshot_store_recovered_records_total");
    let dropped_before = global("nshot_store_dropped_records_total");
    let cfg = StoreConfig {
        value_version: 2,
        legacy_versions: vec![1],
        max_records: 4, // half-cap 2: a handful of puts triggers rotation
        ..config(&dir)
    };
    let mut store = Store::open(cfg.clone()).expect("mixed open");
    assert_eq!(store.stats().recovered_records, 2);
    assert_eq!(store.stats().dropped_records, 0);
    assert_eq!(store.stats().stale_records, 0);
    assert_eq!(global("nshot_store_recovered_records_total"), recovered_before + 2);
    assert_eq!(global("nshot_store_dropped_records_total"), dropped_before);

    // Binary-era writes land at version 2 alongside the legacy records…
    store.put("binary-a", b"\x01\x02binary payload\x00").expect("put");
    assert_eq!(store.version_of("binary-a"), Some(2));
    // …and reads are byte-identical across versions.
    assert_eq!(store.get("legacy-a").as_deref(), Some(json_a));
    assert_eq!(
        store.get("binary-a").as_deref(),
        Some(&b"\x01\x02binary payload\x00"[..])
    );
    // get() promoted legacy-a out of the doomed generation, preserving its
    // payload version (the store reframes, it cannot transcode payloads).
    assert_eq!(store.stats().promotions, 1);
    assert_eq!(store.version_of("legacy-a"), Some(1));

    // Fill the current generation until rotation deletes the v1 segment.
    store.put("binary-b", b"more binary").expect("put");
    store.put("binary-c", b"even more").expect("put");
    assert!(store.stats().compactions >= 1, "rotation must have happened");
    assert!(store.contains("legacy-a"), "promoted survivor lives on");
    assert!(!store.contains("legacy-b"), "unpromoted legacy record ages out");
    assert_eq!(store.get("legacy-a").as_deref(), Some(json_a));
    drop(store);

    // After compaction every segment left on disk is framing-v2: the
    // fabricated v1 file is gone, survivors were rewritten in binary.
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_owned();
        if !name.starts_with("seg-") {
            continue;
        }
        let bytes = std::fs::read(&path).expect("read segment");
        let format = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        assert_eq!(format, FORMAT_VERSION, "{name} must be framing v2 after compaction");
        checked += 1;
    }
    assert!(checked > 0, "compaction left no segments to check");

    // A reopen still serves the survivor byte-identically at its version.
    let mut store = Store::open(cfg).expect("reopen");
    assert_eq!(store.get("legacy-a").as_deref(), Some(json_a));
    assert_eq!(store.version_of("legacy-a"), Some(1));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
