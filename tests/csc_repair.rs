//! Front-end CSC repair feeding the synthesis flow: the raw (coding-
//! conflicting) Figure 1 specification is transformed by state-signal
//! insertion, then synthesized and validated like any other spec.

use nshot::core::{synthesize, SynthesisError, SynthesisOptions};
use nshot::sg::{SgBuilder, SignalKind, StateGraph};
use nshot::sim::{monte_carlo, ConformanceConfig};

/// The raw Figure 1 SG: OR-causal `c`, no phase signal — CSC fails.
fn raw_figure1() -> StateGraph {
    let mut b = SgBuilder::named("figure1-raw");
    let a = b.signal("a", SignalKind::Input);
    let bb = b.signal("b", SignalKind::Input);
    let c = b.signal("c", SignalKind::Output);
    let u0 = b.fresh_state(0b000);
    let u1 = b.fresh_state(0b001);
    let u2 = b.fresh_state(0b010);
    let u3 = b.fresh_state(0b011);
    let u5 = b.fresh_state(0b101);
    let u6 = b.fresh_state(0b110);
    let t = b.fresh_state(0b111);
    let d6 = b.fresh_state(0b110);
    let d5 = b.fresh_state(0b101);
    let d4 = b.fresh_state(0b100);
    let d2 = b.fresh_state(0b010);
    let d1 = b.fresh_state(0b001);
    b.edge_states(u0, (a, true), u1).unwrap();
    b.edge_states(u0, (bb, true), u2).unwrap();
    b.edge_states(u1, (bb, true), u3).unwrap();
    b.edge_states(u2, (a, true), u3).unwrap();
    b.edge_states(u1, (c, true), u5).unwrap();
    b.edge_states(u2, (c, true), u6).unwrap();
    b.edge_states(u3, (c, true), t).unwrap();
    b.edge_states(u5, (bb, true), t).unwrap();
    b.edge_states(u6, (a, true), t).unwrap();
    b.edge_states(t, (a, false), d6).unwrap();
    b.edge_states(t, (bb, false), d5).unwrap();
    b.edge_states(d6, (bb, false), d4).unwrap();
    b.edge_states(d6, (c, false), d2).unwrap();
    b.edge_states(d5, (a, false), d4).unwrap();
    b.edge_states(d5, (c, false), d1).unwrap();
    b.edge_states(d4, (c, false), u0).unwrap();
    b.edge_states(d2, (bb, false), u0).unwrap();
    b.edge_states(d1, (a, false), u0).unwrap();
    b.build_with_initial(u0).unwrap()
}

#[test]
fn synthesis_refuses_csc_violations() {
    let sg = raw_figure1();
    assert!(matches!(
        synthesize(&sg, &SynthesisOptions::default()),
        Err(SynthesisError::Csc(_))
    ));
}

#[test]
fn repair_then_synthesize_then_validate() {
    let sg = raw_figure1();
    let fixed = sg.resolve_csc(3).expect("Figure 1 is repairable");
    assert!(fixed.check_csc().is_ok());
    assert!(!fixed.is_distributive(), "repair keeps the OR causality");

    let imp = synthesize(&fixed, &SynthesisOptions::default()).expect("repaired spec synthesizes");
    // The inserted phase signal is implemented like any internal signal.
    assert!(imp.signals.iter().any(|s| s.name.starts_with("csc")));

    let summary = monte_carlo(&fixed, &imp, &ConformanceConfig::default(), 10);
    assert!(summary.all_clean(), "{:?}", summary.first_failure);
}

#[test]
fn repair_is_idempotent_on_clean_specs() {
    for name in ["full", "chu133", "pmcm2"] {
        let sg = nshot::benchmarks::by_name(name).expect("in suite").build();
        let fixed = sg.resolve_csc(1).expect("already CSC");
        assert_eq!(fixed.num_states(), sg.num_states(), "{name}");
        assert_eq!(fixed.num_signals(), sg.num_signals(), "{name}");
    }
}
