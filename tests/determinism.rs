//! Cross-thread-count determinism of the parallel pipeline.
//!
//! The `nshot-par` worker pool promises byte-identical results at any thread
//! count: `synthesize` fans out per-signal minimization and `monte_carlo`
//! fans out trials, but both reassemble results in input order and derive
//! all randomness from per-item seeds. These tests pin the pool to 1 and 8
//! workers and require identical output, including with a pre-populated
//! minimizer cache (a cache hit must be indistinguishable from a fresh
//! espresso run regardless of which thread populated the entry).

use std::sync::Mutex;

use nshot_core::{synthesize, SynthesisOptions};
use nshot_logic::reset_cache;
use nshot_par::ThreadGuard;
use nshot_sim::{monte_carlo, ConformanceConfig};

/// Serializes tests that pin the process-global thread override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

const CIRCUITS: &[&str] = &["chu133", "full", "pmcm1", "sbuf-send-ctl"];

/// Everything observable about a synthesized implementation, rendered to a
/// comparable string (covers, trigger certificates, delay requirements,
/// netlist, area/delay figures).
fn synthesis_digest(name: &str) -> String {
    let sg = nshot_benchmarks::by_name(name).expect("in suite").build();
    let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
    format!("{imp:?}")
}

#[test]
fn synthesize_is_identical_at_1_and_8_threads() {
    let _lock = OVERRIDE_LOCK.lock().unwrap();
    for name in CIRCUITS {
        let serial = {
            let _g = ThreadGuard::pin(1);
            reset_cache();
            synthesis_digest(name)
        };
        let parallel = {
            let _g = ThreadGuard::pin(8);
            reset_cache();
            synthesis_digest(name)
        };
        assert_eq!(serial, parallel, "{name}: thread count changed the result");
    }
}

#[test]
fn warm_cache_does_not_change_results() {
    let _lock = OVERRIDE_LOCK.lock().unwrap();
    let cold: Vec<String> = {
        let _g = ThreadGuard::pin(8);
        CIRCUITS
            .iter()
            .map(|name| {
                reset_cache();
                synthesis_digest(name)
            })
            .collect()
    };
    // One warm pass over all circuits: every signal's minimization now hits
    // entries populated in arbitrary order by earlier parallel runs.
    let warm: Vec<String> = {
        let _g = ThreadGuard::pin(8);
        reset_cache();
        for name in CIRCUITS {
            let _ = synthesis_digest(name);
        }
        CIRCUITS.iter().map(|name| synthesis_digest(name)).collect()
    };
    assert_eq!(cold, warm, "cache warmth changed synthesis output");
}

#[test]
fn monte_carlo_counts_match_across_thread_counts() {
    let _lock = OVERRIDE_LOCK.lock().unwrap();
    for name in &["chu133", "full", "ebergen"] {
        let sg = nshot_benchmarks::by_name(name).expect("in suite").build();
        let imp = {
            let _g = ThreadGuard::pin(1);
            reset_cache();
            synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes")
        };
        let config = ConformanceConfig::default();
        let serial = {
            let _g = ThreadGuard::pin(1);
            monte_carlo(&sg, &imp, &config, 12)
        };
        let parallel = {
            let _g = ThreadGuard::pin(8);
            monte_carlo(&sg, &imp, &config, 12)
        };
        assert_eq!(serial.trials, parallel.trials, "{name}");
        assert_eq!(serial.clean_trials, parallel.clean_trials, "{name}");
        assert_eq!(
            serial.total_transitions, parallel.total_transitions,
            "{name}: trial seed schedule not preserved"
        );
        assert_eq!(
            format!("{:?}", serial.first_failure),
            format!("{:?}", parallel.first_failure),
            "{name}"
        );
    }
}

#[test]
fn nshot_threads_env_is_respected_by_default_sizing() {
    let _lock = OVERRIDE_LOCK.lock().unwrap();
    // With no override pinned, NSHOT_THREADS drives the pool size.
    assert_eq!(nshot_par::thread_override(), None);
    std::env::set_var("NSHOT_THREADS", "3");
    assert_eq!(nshot_par::num_threads(), 3);
    std::env::remove_var("NSHOT_THREADS");
    // And a pinned override wins over the environment.
    std::env::set_var("NSHOT_THREADS", "5");
    {
        let _g = ThreadGuard::pin(2);
        assert_eq!(nshot_par::num_threads(), 2);
    }
    assert_eq!(nshot_par::num_threads(), 5);
    std::env::remove_var("NSHOT_THREADS");
}
