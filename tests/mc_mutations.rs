//! Mutation tests for the hazard model checker.
//!
//! Each test seeds a *known-bad* N-SHOT implementation — a mutation a
//! correct synthesis flow would never emit — and asserts that:
//!
//! 1. `nshot-mc` refutes it with a concrete counterexample (and proves the
//!    unmutated twin clean, so the mutation is what the checker caught);
//! 2. the counterexample *replays* through the timed `nshot-sim`
//!    conformance oracle: a deterministic seed sweep finds a gate-delay
//!    assignment realizing the same externally observable violation —
//!    same kind, same signal, same direction.
//!
//! The mutations mirror the paper's correctness obligations:
//!
//! * dropping a trigger cube violates the trigger requirement (§IV.C);
//! * removing the Eq. 1 compensation delay line lets the previous phase's
//!   left-over SOP pulse trespass through the freshly opened ack gate;
//! * an MHS flip-flop with ω = 0 stops absorbing the sub-ω runts that an
//!   undersized delay line relies on the filter to swallow.

use nshot::core::{assemble_netlist, synthesize, SynthesisOptions};
use nshot::logic::{Cover, Cube};
use nshot::mc::replay::{replay, same_violation};
use nshot::mc::{check, McConfig, McViolation};
use nshot::netlist::DelayModel;
use nshot::sg::{SgBuilder, SignalKind, StateGraph};
use nshot::sim::{ConformanceConfig, SimConfig};

/// The four-phase request/grant handshake (r input, g output).
fn handshake() -> StateGraph {
    let mut b = SgBuilder::named("handshake");
    let r = b.signal("r", SignalKind::Input);
    let g = b.signal("g", SignalKind::Output);
    b.edge_codes(0b00, (r, true), 0b01).unwrap();
    b.edge_codes(0b01, (g, true), 0b11).unwrap();
    b.edge_codes(0b11, (r, false), 0b10).unwrap();
    b.edge_codes(0b10, (g, false), 0b00).unwrap();
    b.build(0b00).unwrap()
}

/// Sweep at most this many conformance seeds looking for a timed
/// realization. Every counterexample below reproduces well within this.
const MAX_REPLAY_SEEDS: u64 = 200;

fn replay_config(model: DelayModel, omega_ps: u64) -> ConformanceConfig {
    ConformanceConfig {
        sim: SimConfig {
            delay_model: model,
            omega_ps,
            ..SimConfig::default()
        },
        ..ConformanceConfig::default()
    }
}

/// Mutation 1 — drop a trigger cube from the set network.
///
/// Start from the redundant but correct set cover `r·g' + r·g` (≡ `r`) and
/// delete `r·g'` — the cube covering the trigger region, where `g` is still
/// low. The survivor `r·g` can never excite before `g` itself rises, so the
/// circuit stalls in state `01` with `+g` pending: a deadlock.
#[test]
fn dropped_trigger_cube_deadlocks_and_replays() {
    let sg = handshake();
    let g = sg.non_input_signals().next().unwrap();
    let n = sg.num_signals();
    let reset = {
        let mut c = Cover::empty(n);
        c.push(Cube::from_literals(n, &[(0, false)]));
        c
    };

    // The unmutated redundant cover is hazard-free — the checker proves it.
    let mut full_set = Cover::empty(n);
    full_set.push(Cube::from_literals(n, &[(0, true), (1, false)]));
    full_set.push(Cube::from_literals(n, &[(0, true), (1, true)]));
    let (good_nl, _) = assemble_netlist(
        &sg,
        &[(g, full_set, reset.clone())],
        &DelayModel::nominal(),
    )
    .unwrap();
    let good = check(&sg, &good_nl, &McConfig::default()).unwrap();
    assert!(good.is_proved(), "baseline must prove: {}", good.render());

    // Drop the trigger cube r·g'.
    let mut mutated_set = Cover::empty(n);
    mutated_set.push(Cube::from_literals(n, &[(0, true), (1, true)]));
    let (bad_nl, _) =
        assemble_netlist(&sg, &[(g, mutated_set, reset)], &DelayModel::nominal()).unwrap();
    let verdict = check(&sg, &bad_nl, &McConfig::default()).unwrap();
    let cex = verdict
        .counterexample()
        .expect("dropping the trigger cube must be refuted");
    match &cex.violation {
        McViolation::Deadlock { expected, .. } => {
            assert_eq!(expected, &vec!["+g".to_string()]);
        }
        v => panic!("expected a deadlock on +g, got {v:?}"),
    }

    // Replay: any delay assignment stalls identically, so the very first
    // seed realizes the deadlock in the timed simulator.
    let imp = synthesize(&sg, &SynthesisOptions::default()).unwrap();
    let mut mutant = imp.clone();
    mutant.netlist = bad_nl;
    let outcome = replay(
        &sg,
        &mutant,
        cex,
        &replay_config(DelayModel::nominal(), 300),
        MAX_REPLAY_SEEDS,
    )
    .expect("a deadlock replays under any delay assignment");
    assert_eq!(outcome.seed, 0, "no delay assignment avoids a deadlock");
    assert!(same_violation(&cex.violation, &outcome.violation));
}

/// Mutation 2 — zero the Eq. 1 compensation delay line.
///
/// Under a delay model with a wide min/max spread, Eq. 1 demands a real
/// delay line on the handshake's feedback path (the reset SOP can settle
/// up to 700 ps after the flip-flop has already responded). The compensated
/// netlist is proved hazard-free; stripping the line (a 0 ps delay line is
/// timing-identical to a wire) lets the stale reset pulse trespass through
/// the freshly opened ack gate and fire `-g` out of phase.
#[test]
fn zeroed_delay_line_trespasses_and_replays() {
    let sg = handshake();
    let imp = synthesize(&sg, &SynthesisOptions::default()).unwrap();
    let covers: Vec<_> = imp
        .signals
        .iter()
        .map(|s| (s.signal, s.set_cover.clone(), s.reset_cover.clone()))
        .collect();

    // Wide enough that Eq. 1 exceeds the ω = 300 ps absorption credit, so
    // the requirement must be met by a physical line, not the pulse filter.
    let wide = DelayModel {
        combinational_ns: (0.1, 1.2),
        storage_ns: (0.5, 2.4),
    };
    let config = McConfig {
        delay_model: wide.clone(),
        ..McConfig::default()
    };

    // Compensated: the assembler sizes the line for this model → proved.
    let (good_nl, good_sigs) = assemble_netlist(&sg, &covers, &wide).unwrap();
    assert!(
        good_sigs.iter().any(|s| s.delay_line.is_some()),
        "the wide model must force a real delay line"
    );
    let good = check(&sg, &good_nl, &config).unwrap();
    assert!(good.is_proved(), "compensated: {}", good.render());

    // Zeroed: assembling under the nominal model emits no line at all.
    let (bad_nl, bad_sigs) = assemble_netlist(&sg, &covers, &DelayModel::nominal()).unwrap();
    assert!(bad_sigs.iter().all(|s| s.delay_line.is_none()));
    let verdict = check(&sg, &bad_nl, &config).unwrap();
    let cex = verdict
        .counterexample()
        .expect("the uncompensated netlist must be refuted");
    match &cex.violation {
        McViolation::UnexpectedTransition { signal, rose, .. } => {
            assert_eq!(signal, "g");
            assert!(!rose, "the left-over reset pulse fires -g early");
        }
        v => panic!("expected the -g trespass, got {v:?}"),
    }

    // Replay under the same wide model: the sweep finds a delay assignment
    // where the reset SOP outlives the flip-flop response by more than ω.
    let mut mutant = imp.clone();
    mutant.netlist = bad_nl;
    let outcome = replay(&sg, &mutant, cex, &replay_config(wide, 300), MAX_REPLAY_SEEDS)
        .expect("the trespass must replay within the seed sweep");
    assert!(same_violation(&cex.violation, &outcome.violation));
    assert!(
        !outcome.waveform.signals().is_empty(),
        "the violating trial is traced"
    );
}

/// Mutation 3 — swap the MHS pulse filter threshold ω down to 0.
///
/// Under the wide-spread model the handshake's Eq. 1 requirement is 200 ps
/// — *less* than ω = 300 ps, so the paper allows the compensation to ride
/// on the pulse filter alone: the uncompensated netlist is hazard-free
/// because every trespassing pulse is a sub-ω runt the flip-flop absorbs.
/// A flip-flop with ω = 0 passes those runts, and the same netlist fails.
#[test]
fn omega_zero_unmasks_the_filtered_runts() {
    let sg = handshake();
    let imp = synthesize(&sg, &SynthesisOptions::default()).unwrap();
    let covers: Vec<_> = imp
        .signals
        .iter()
        .map(|s| (s.signal, s.set_cover.clone(), s.reset_cover.clone()))
        .collect();
    let (nl, sigs) = assemble_netlist(&sg, &covers, &DelayModel::nominal()).unwrap();
    assert!(sigs.iter().all(|s| s.delay_line.is_none()));

    // With the real ω the runts are absorbed and the proof closes.
    let healthy = check(
        &sg,
        &nl,
        &McConfig {
            delay_model: DelayModel::wide_spread(),
            ..McConfig::default()
        },
    )
    .unwrap();
    assert!(healthy.is_proved(), "ω = 300: {}", healthy.render());

    // ω = 0: absorption gone, the credit in the Eq. 1 check gone.
    let verdict = check(
        &sg,
        &nl,
        &McConfig {
            delay_model: DelayModel::wide_spread(),
            omega_ps: 0,
            ..McConfig::default()
        },
    )
    .unwrap();
    let cex = verdict
        .counterexample()
        .expect("a filterless flip-flop must be refuted");
    let McViolation::UnexpectedTransition { signal, .. } = &cex.violation else {
        panic!("expected a trespass, got {:?}", cex.violation);
    };
    assert_eq!(signal, "g");

    // Replay with the simulator's MHS threshold forced to 0 as well: some
    // seed gives the reset inverter a longer delay than the flip-flop
    // response, and the resulting runt — absorbed in the healthy circuit —
    // fires observably.
    let mut mutant = imp.clone();
    mutant.netlist = nl;
    let outcome = replay(
        &sg,
        &mutant,
        cex,
        &replay_config(DelayModel::wide_spread(), 0),
        MAX_REPLAY_SEEDS,
    )
    .expect("the runt must replay within the seed sweep");
    assert!(same_violation(&cex.violation, &outcome.violation));

    // Sanity: the same seed sweep under the healthy ω stays clean — the
    // violation is the filter's absence, not a latent bug.
    assert!(
        replay(
            &sg,
            &mutant,
            cex,
            &replay_config(DelayModel::wide_spread(), 300),
            MAX_REPLAY_SEEDS,
        )
        .is_none(),
        "ω = 300 absorbs every runt the sweep can produce"
    );
}
