//! The paper's formal statements, checked on the whole benchmark suite:
//! Properties 1–3, Theorem 1 (trigger cubes), Theorem 2 (synthesizability),
//! Corollary 1 (single traversal), Table 1, and Section IV.F initialization.

use nshot::core::{synthesize, verify_covers, SynthesisOptions, TriggerStatus};
use nshot::sg::Dir;

/// Benchmarks small enough for exhaustive per-test analysis.
fn analysed_suite() -> Vec<nshot::sg::StateGraph> {
    nshot::benchmarks::suite()
        .iter()
        .filter(|b| b.paper_states <= 300)
        .map(nshot::benchmarks::Benchmark::build)
        .collect()
}

#[test]
fn property1_output_trapping_holds_on_the_suite() {
    for sg in analysed_suite() {
        assert!(sg.check_output_trapping(), "{}", sg.name());
    }
}

#[test]
fn property2_trigger_regions_reachable() {
    for sg in analysed_suite() {
        for a in sg.non_input_signals() {
            let regions = sg.regions_of(a);
            for (ei, er) in regions.excitation.iter().enumerate() {
                assert!(
                    regions.triggers_of(ei).next().is_some(),
                    "{}: ER without trigger region",
                    sg.name()
                );
                // Every trigger region is inside its ER.
                for tr in regions.triggers_of(ei) {
                    assert!(tr.states.is_subset(&er.states));
                }
            }
        }
    }
}

#[test]
fn theorem1_trigger_cubes_certified() {
    for sg in analysed_suite() {
        let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
        for s in &imp.signals {
            let regions = sg.regions_of(s.signal);
            // One certificate per trigger region.
            assert_eq!(
                s.triggers.len(),
                regions.triggers.len(),
                "{}/{}",
                sg.name(),
                s.name
            );
            for cert in &s.triggers {
                let cover = match cert.dir {
                    Dir::Rise => &s.set_cover,
                    Dir::Fall => &s.reset_cover,
                };
                assert!(
                    cover
                        .iter()
                        .any(|c| cert.states.iter().all(|&m| c.contains_minterm(m))),
                    "{}/{}: certificate without covering cube",
                    sg.name(),
                    s.name
                );
            }
        }
    }
}

#[test]
fn corollary1_single_traversal_needs_no_repair() {
    for sg in analysed_suite() {
        if !sg.is_single_traversal() {
            continue;
        }
        let imp = synthesize(&sg, &SynthesisOptions::default()).expect("Corollary 1");
        for s in &imp.signals {
            for cert in &s.triggers {
                assert!(
                    matches!(cert.status, TriggerStatus::Covered { .. }),
                    "{}/{}: single-traversal SG needed a repair cube",
                    sg.name(),
                    s.name
                );
            }
        }
    }
}

#[test]
fn theorem2_the_whole_suite_synthesizes() {
    // CSC + semi-modularity + trigger requirement ⇒ implementation exists —
    // including every non-distributive circuit.
    for b in nshot::benchmarks::suite() {
        if b.paper_states > 300 {
            continue; // big ones are exercised by the table2 binary
        }
        let sg = b.build();
        let imp = synthesize(&sg, &SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            imp.signals.len(),
            sg.non_input_signals().count(),
            "{}",
            b.name
        );
        assert!(imp.area > 0);
    }
}

#[test]
fn table1_covers_verify_everywhere() {
    for sg in analysed_suite() {
        let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
        for s in &imp.signals {
            verify_covers(&sg, s.signal, &s.set_cover, &s.reset_cover)
                .unwrap_or_else(|e| panic!("{}: {e}", sg.name()));
        }
    }
}

#[test]
fn initialization_matches_initial_values() {
    // Section IV.F: the initialization plan always reproduces the initial
    // state's signal values.
    for sg in analysed_suite() {
        let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
        for s in &imp.signals {
            assert_eq!(
                s.init.initial_value(),
                sg.value(sg.initial(), s.signal),
                "{}/{}",
                sg.name(),
                s.name
            );
        }
    }
}

#[test]
fn eq1_never_requires_compensation_nominally() {
    // The paper: "delay compensation was never required" on any example.
    for sg in analysed_suite() {
        let imp = synthesize(&sg, &SynthesisOptions::default()).expect("synthesizes");
        assert!(imp.delay_compensation_free(), "{}", sg.name());
    }
}
