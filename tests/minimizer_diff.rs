//! Differential test: heuristic ESPRESSO vs. the exact minimizer, over
//! every set/reset function of every Table 2 benchmark.
//!
//! For each function the two minimizers must agree *semantically modulo
//! don't-cares* — checked with the tautology-based cover containment both
//! directions, not by comparing cube lists — and the heuristic result must
//! stay within a small bound of the exact optimum, so a quality regression
//! in the iterative loop is caught even when correctness holds.

use nshot::core::SetResetSpec;
use nshot::logic::{espresso, minimize_exact, Cover, Function};

/// Largest cube-count gap (heuristic − exact) tolerated per function. The
/// suite's current worst case is 0 — the heuristic finds the optimum on
/// every benchmark function — but a bound of 1 keeps the test from pinning
/// the heuristic's exact search order.
const MAX_CUBE_GAP: usize = 1;

/// `a` and `b` implement the same completely specified extension of `f`:
/// each is contained in the other once the don't-care space is granted.
fn equivalent_modulo_dc(f: &Function, a: &Cover, b: &Cover) -> bool {
    let a_dc = a.union(f.dc_set());
    let b_dc = b.union(f.dc_set());
    a_dc.contains_cover(b) && b_dc.contains_cover(a)
}

fn diff_function(circuit: &str, label: &str, f: &Function) -> (usize, usize) {
    let heuristic = espresso(f);
    let exact = minimize_exact(f).unwrap_or_else(|e| panic!("{circuit}/{label}: exact: {e}"));

    assert!(
        f.is_implemented_by(&heuristic),
        "{circuit}/{label}: heuristic cover does not implement the function"
    );
    assert!(
        f.is_implemented_by(&exact),
        "{circuit}/{label}: exact cover does not implement the function"
    );
    assert!(
        equivalent_modulo_dc(f, &heuristic, &exact),
        "{circuit}/{label}: minimizers disagree outside the don't-care set\n\
         heuristic: {heuristic:?}\nexact: {exact:?}"
    );
    assert!(
        exact.num_cubes() <= heuristic.num_cubes(),
        "{circuit}/{label}: exact ({}) larger than heuristic ({})",
        exact.num_cubes(),
        heuristic.num_cubes()
    );
    assert!(
        heuristic.num_cubes() <= exact.num_cubes() + MAX_CUBE_GAP,
        "{circuit}/{label}: heuristic {} cubes vs exact optimum {}",
        heuristic.num_cubes(),
        exact.num_cubes()
    );
    (heuristic.num_cubes(), exact.num_cubes())
}

#[test]
fn heuristic_matches_exact_on_every_benchmark_function() {
    let mut functions = 0usize;
    let mut heuristic_total = 0usize;
    let mut exact_total = 0usize;
    for bench in nshot::benchmarks::suite() {
        let sg = bench.build();
        for a in sg.non_input_signals() {
            let spec = SetResetSpec::derive(&sg, a);
            for (label, f) in [("set", &spec.set), ("reset", &spec.reset)] {
                let name = format!("{}.{label}", sg.signal_name(a));
                let (h, e) = diff_function(bench.name, &name, f);
                functions += 1;
                heuristic_total += h;
                exact_total += e;
            }
        }
    }
    // The suite exercises a real spread of function shapes; make sure the
    // loop did not silently degenerate (e.g. an empty suite build).
    assert!(functions > 100, "only {functions} functions diffed");
    println!(
        "diffed {functions} functions: heuristic {heuristic_total} cubes, exact {exact_total}"
    );
}
