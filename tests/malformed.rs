//! Malformed-input corpus: every file under `tests/corpus/malformed/` must
//! produce a structured `Err` from the parsers — never a panic — and a
//! structured 400 from the service, on both the library and the wire path.

use nshot::server::{
    json, load_spec, process_synth, process_verify, Deadline, Json, Method, OutputFormat,
    Server, ServerConfig, SynthRequest, VerifyRequest,
};
use nshot::sg::SgError;
use nshot::stg::StgError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("malformed")
}

/// Every corpus file as `(stem, bytes)`, sorted for stable test order.
/// Subdirectories (the binary-frame corpus under `wire/`) have their own
/// replay tests below.
fn corpus() -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.is_dir() {
                return None;
            }
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            Some((name, std::fs::read(&path).expect("read corpus file")))
        })
        .collect();
    entries.sort();
    assert!(entries.len() >= 10, "corpus went missing");
    entries
}

/// The minimized malformed-frame witnesses `nshot-fuzz --wire-mutations`
/// archived, as `(stem, bytes)`, sorted for stable test order.
fn wire_corpus() -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(corpus_dir().join("wire"))
        .expect("wire corpus dir")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if !path.extension().is_some_and(|x| x == "bin") {
                return None;
            }
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            Some((name, std::fs::read(&path).expect("read wire corpus file")))
        })
        .collect();
    entries.sort();
    assert!(entries.len() >= 5, "wire corpus went missing");
    entries
}

fn synth_request(spec: &str) -> SynthRequest {
    SynthRequest {
        spec: spec.into(),
        method: Method::Nshot,
        minimizer: nshot::core::Minimizer::Heuristic,
        trials: 0,
        format: OutputFormat::Blif,
        share: false,
    }
}

#[test]
fn parsers_return_structured_errors_never_panic() {
    for (name, bytes) in corpus() {
        let Ok(text) = String::from_utf8(bytes) else {
            continue; // non-UTF-8 is rejected at the service boundary
        };
        // The combined loader (same dispatch the server uses).
        let loaded = load_spec(&text);
        assert!(loaded.is_err(), "{name}: loader accepted malformed input");

        // And the individual parsers, with typed errors where the corpus
        // entry targets a specific failure mode.
        match name.as_str() {
            "too_many_signals.sg" => {
                assert!(matches!(
                    nshot::sg::parse_sg(&text),
                    Err(SgError::TooManySignals(65))
                ));
            }
            "undefined_signal.sg" => {
                assert!(matches!(
                    nshot::sg::parse_sg(&text),
                    Err(SgError::UnknownReference(_))
                ));
            }
            "inconsistent.sg" => {
                assert!(matches!(
                    nshot::sg::parse_sg(&text),
                    Err(SgError::InconsistentAssignment { .. })
                ));
            }
            "nondeterministic.sg" => {
                assert!(matches!(
                    nshot::sg::parse_sg(&text),
                    Err(SgError::NonDeterministic { .. })
                ));
            }
            "too_many_signals.g" => {
                // Parses fine; the elaboration guard must fire *before* the
                // u64 code packing would overflow.
                let stg = nshot::stg::parse_stg(&text).expect("structurally valid");
                assert!(matches!(
                    stg.elaborate(),
                    Err(StgError::Sg(SgError::TooManySignals(64)))
                ));
            }
            "unbounded.g" => {
                // A cyclic net whose marking grows without bound: elaboration
                // must stop with a structured error, not spin or overflow.
                let stg = nshot::stg::parse_stg(&text).expect("structurally valid");
                assert!(matches!(
                    stg.elaborate(),
                    Err(StgError::Unbounded { .. } | StgError::TooManyStates(_))
                ));
            }
            "duplicate_transitions.g" => {
                // The `.g` format has no arc weights — a repeated arc is an
                // authoring mistake the parser must name, not dedupe.
                assert!(matches!(
                    nshot::stg::parse_stg(&text),
                    Err(StgError::Parse { line: 6, .. })
                ));
            }
            "unmarked_cycle.g" => {
                // One ring marked, the other tokenless: its transitions can
                // never fire and the signal would freeze at 0.
                match nshot::stg::parse_stg(&text)
                    .expect("structurally valid")
                    .elaborate()
                {
                    Err(StgError::DeadTransition(t)) => assert_eq!(t, "z+"),
                    other => panic!("expected a dead transition, got {other:?}"),
                }
            }
            "empty_marking.g" => {
                // `.marking { }`: nothing is ever enabled.
                assert!(matches!(
                    nshot::stg::parse_stg(&text)
                        .expect("structurally valid")
                        .elaborate(),
                    Err(StgError::DeadTransition(_))
                ));
            }
            "crlf.g" => {
                // CRLF line endings must not confuse tokenizing or the
                // 1-based line numbers in the error.
                assert!(matches!(
                    nshot::stg::parse_stg(&text),
                    Err(StgError::Parse { line: 9, .. })
                ));
            }
            _ => {} // truncated/garbage/empty: any structured Err will do
        }
    }
}

/// CRLF endings on a *well-formed* spec are cosmetic: the corpus entry
/// above proves the reject path, this proves the accept path.
#[test]
fn crlf_line_endings_do_not_reject_valid_specs() {
    let unix = ".model hs\n.inputs r\n.outputs g\n.graph\nr+ g+\ng+ r-\nr- g-\ng- r+\n.marking { <g-,r+> }\n.end\n";
    let dos = unix.replace('\n', "\r\n");
    let a = nshot::stg::parse_stg(unix).unwrap().elaborate().unwrap();
    let b = nshot::stg::parse_stg(&dos).unwrap().elaborate().unwrap();
    assert_eq!(a.num_states(), b.num_states());
}

#[test]
fn service_answers_the_corpus_with_400() {
    for (name, bytes) in corpus() {
        let Ok(text) = String::from_utf8(bytes) else {
            continue;
        };
        let response = process_synth(&synth_request(&text), &Deadline::unlimited());
        assert_eq!(response.code, 400, "{name}: expected a spec error");
        assert_eq!(response.status, "error");
        assert!(
            response.body.iter().any(|(k, _)| k == "error"),
            "{name}: error response carries a message"
        );
    }
}

/// The `verify` op shares the loader with `synth`: the whole corpus must
/// come back as a structured 400 before any model checking is attempted.
#[test]
fn verify_op_answers_the_corpus_with_400() {
    for (name, bytes) in corpus() {
        let Ok(text) = String::from_utf8(bytes) else {
            continue;
        };
        let request = VerifyRequest {
            spec: text,
            minimizer: nshot::core::Minimizer::Heuristic,
            max_states: 1_000,
        };
        let response = process_verify(&request, &Deadline::unlimited());
        assert_eq!(response.code, 400, "{name}: expected a spec error");
        assert_eq!(response.status, "error");
        assert!(
            response.body.iter().any(|(k, _)| k == "error"),
            "{name}: error response carries a message"
        );
    }
}

#[test]
fn wire_path_survives_the_corpus() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    let mut roundtrip = |bytes: &[u8]| -> Json {
        writer.write_all(bytes).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        json::parse(line.trim_end()).expect("response is json")
    };

    for (name, bytes) in corpus() {
        let response = match String::from_utf8(bytes.clone()) {
            // Valid text rides inside a well-formed synth request…
            Ok(text) => {
                let request = Json::Obj(vec![
                    ("id".into(), Json::Str(name.clone())),
                    ("op".into(), Json::Str("synth".into())),
                    ("spec".into(), Json::Str(text)),
                ]);
                roundtrip(request.to_string().as_bytes())
            }
            // …non-UTF-8 goes on the wire raw (the corpus keeps it newline-free).
            Err(_) => roundtrip(&bytes),
        };
        assert_eq!(
            response.get("code").and_then(Json::as_u64),
            Some(400),
            "{name}: {response}"
        );
    }

    // The connection and the service survive the whole corpus.
    let pong = roundtrip(br#"{"op":"ping"}"#);
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    server.shutdown();
    server.wait();
}

/// Decode one malformed byte stream the way a binary connection would:
/// frame by frame, each payload through the record decoder for its tag.
/// `Ok(())` means every frame decoded cleanly; `Err` names the typed
/// failure. Panics and over-reads are what the corpus exists to rule out.
fn decode_wire_bytes(bytes: &[u8]) -> Result<(), String> {
    use nshot::server::wirecodec::{self, RequestDecodeError};
    use nshot::wire::{read_frame, tags};
    let mut cursor = std::io::Cursor::new(bytes);
    loop {
        let frame = match read_frame(&mut cursor) {
            Ok(None) => return Ok(()),
            Ok(Some(frame)) => frame,
            Err(e) => return Err(format!("frame: {e}")),
        };
        let result = match frame.tag {
            tags::REQUEST => match wirecodec::decode_request(&frame.payload) {
                Ok(_) => Ok(()),
                Err(RequestDecodeError::Frame(e)) => Err(format!("request: {e}")),
                Err(RequestDecodeError::Invalid { message, .. }) => {
                    Err(format!("request invalid: {message}"))
                }
            },
            tags::RESPONSE_HEAD => wirecodec::decode_response_head(&frame.payload)
                .map(|_| ())
                .map_err(|e| format!("head: {e}")),
            tags::FIELD => wirecodec::decode_field(&frame.payload)
                .map(|_| ())
                .map_err(|e| format!("field: {e}")),
            tags::END => wirecodec::decode_end(&frame.payload)
                .map(|_| ())
                .map_err(|e| format!("end: {e}")),
            tags::SPEC | tags::NETLIST | tags::CERT => wirecodec::decode_artifact(&frame)
                .map(|_| ())
                .map_err(|e| format!("artifact: {e}")),
            other => Err(format!("unknown tag {other}")),
        };
        result?;
    }
}

/// Every archived malformed-frame witness must come back as a typed
/// `WireError`/`RequestDecodeError` — the decode path must neither panic
/// (the harness would abort the test) nor accept the damage silently.
#[test]
fn wire_corpus_decodes_to_typed_errors_never_panics() {
    let before = nshot::wire::decode_errors_total();
    for (name, bytes) in wire_corpus() {
        let result = decode_wire_bytes(&bytes);
        assert!(
            result.is_err(),
            "{name}: malformed witness decoded cleanly — regenerate the corpus \
             (nshot-fuzz --wire-mutations) if the wire format changed"
        );
    }
    // Framing damage is counted in the `nshot_wire_decode_errors_total`
    // series the metrics endpoint exposes (semantic rejects are not).
    assert!(
        nshot::wire::decode_errors_total() > before,
        "replaying the wire corpus must note decode errors"
    );
}

/// A live binary-upgraded connection fed each witness must fail that
/// connection only: the server stays up and answers a fresh NDJSON ping.
#[test]
fn server_survives_the_wire_corpus() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    for (name, bytes) in wire_corpus() {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writer
            .write_all(b"{\"op\":\"hello\",\"format\":\"binary\"}\n")
            .expect("write hello");
        writer.flush().expect("flush");
        let mut ack = String::new();
        reader.read_line(&mut ack).expect("read ack");
        assert!(ack.contains("\"code\":200"), "{name}: upgrade refused: {ack}");
        // The malformed frames, then EOF so truncated witnesses terminate.
        writer.write_all(&bytes).expect("write corpus bytes");
        writer.flush().expect("flush");
        writer
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown write");
        // Drain whatever the server answers (an error response stream or
        // an immediate close) until it hangs up.
        let mut sink = Vec::new();
        let _ = std::io::Read::read_to_end(&mut reader, &mut sink);
    }
    let pong = nshot::server::client::request(
        server.local_addr(),
        r#"{"op":"ping"}"#,
    )
    .expect("service survives the wire corpus");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    server.shutdown();
    server.wait();
}
